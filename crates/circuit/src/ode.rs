//! Ordinary differential equation solvers.
//!
//! Three integrators are provided:
//!
//! * [`Euler`] — explicit first order (reference / worst case),
//! * [`Rk4`] — classic fourth-order Runge–Kutta, fixed step,
//! * [`Rk23`] — the adaptive Bogacki–Shampine 2(3) embedded pair with
//!   proportional step-size control and cubic Hermite dense output. This
//!   is the same method family as Matlab's `ode23`, which the paper used
//!   for its Simulink model (§III).
//!
//! All solvers operate on fixed-size state vectors `[f64; N]`; the
//! power-neutral co-simulation only needs `N = 1` (the buffer-capacitor
//! voltage), but the solvers are written for arbitrary small systems and
//! are tested on 2-dimensional oscillators.

use crate::CircuitError;

/// Right-hand side of an ODE system `dy/dt = f(t, y)`.
///
/// Implemented for all closures of the matching signature; a named trait
/// keeps solver signatures readable.
pub trait OdeSystem<const N: usize> {
    /// Evaluates the derivative at time `t` and state `y`.
    fn eval(&mut self, t: f64, y: &[f64; N]) -> [f64; N];
}

impl<F, const N: usize> OdeSystem<N> for F
where
    F: FnMut(f64, &[f64; N]) -> [f64; N],
{
    fn eval(&mut self, t: f64, y: &[f64; N]) -> [f64; N] {
        self(t, y)
    }
}

fn axpy<const N: usize>(y: &[f64; N], h: f64, k: &[f64; N]) -> [f64; N] {
    let mut out = *y;
    for i in 0..N {
        out[i] += h * k[i];
    }
    out
}

/// A fixed-step one-step integration method.
pub trait FixedStepMethod {
    /// Advances `y` from `t` to `t + h` and returns the new state.
    fn step<const N: usize>(
        &self,
        system: &mut impl OdeSystem<N>,
        t: f64,
        y: &[f64; N],
        h: f64,
    ) -> [f64; N];

    /// Classical order of accuracy of the method.
    fn order(&self) -> usize;

    /// Integrates from `t0` to `t_end` with a fixed step `h`, returning
    /// the final state. The last step is shortened to land on `t_end`
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidArgument`] when `h` is not a
    /// positive finite number or `t_end < t0`.
    fn integrate<const N: usize>(
        &self,
        system: &mut impl OdeSystem<N>,
        t0: f64,
        y0: [f64; N],
        t_end: f64,
        h: f64,
    ) -> Result<[f64; N], CircuitError> {
        if !(h > 0.0) || !h.is_finite() {
            return Err(CircuitError::InvalidArgument("step size must be positive and finite"));
        }
        if t_end < t0 {
            return Err(CircuitError::InvalidArgument("t_end must not precede t0"));
        }
        let mut t = t0;
        let mut y = y0;
        while t < t_end {
            let step = h.min(t_end - t);
            y = self.step(system, t, &y, step);
            t += step;
        }
        Ok(y)
    }
}

/// Explicit (forward) Euler method. First order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euler;

impl Euler {
    /// Creates the Euler method.
    pub fn new() -> Self {
        Euler
    }
}

impl FixedStepMethod for Euler {
    fn step<const N: usize>(
        &self,
        system: &mut impl OdeSystem<N>,
        t: f64,
        y: &[f64; N],
        h: f64,
    ) -> [f64; N] {
        let k = system.eval(t, y);
        axpy(y, h, &k)
    }

    fn order(&self) -> usize {
        1
    }
}

/// Classic fourth-order Runge–Kutta method, fixed step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rk4;

impl Rk4 {
    /// Creates the RK4 method.
    pub fn new() -> Self {
        Rk4
    }
}

impl FixedStepMethod for Rk4 {
    fn step<const N: usize>(
        &self,
        system: &mut impl OdeSystem<N>,
        t: f64,
        y: &[f64; N],
        h: f64,
    ) -> [f64; N] {
        let k1 = system.eval(t, y);
        let k2 = system.eval(t + 0.5 * h, &axpy(y, 0.5 * h, &k1));
        let k3 = system.eval(t + 0.5 * h, &axpy(y, 0.5 * h, &k2));
        let k4 = system.eval(t + h, &axpy(y, h, &k3));
        let mut out = *y;
        for i in 0..N {
            out[i] += (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out
    }

    fn order(&self) -> usize {
        4
    }
}

/// Tolerances and step bounds for the adaptive [`Rk23`] solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Smallest step the controller may take before reporting underflow.
    pub min_step: f64,
    /// Largest step the controller may take (caps how far the simulation
    /// can coast past environment breakpoints).
    pub max_step: f64,
    /// Initial step size guess.
    pub initial_step: f64,
}

impl AdaptiveOptions {
    /// Defaults matched to the power-neutral co-simulation: millivolt
    /// accuracy on a volts-scale state with steps between 1 µs and 50 ms.
    pub fn new() -> Self {
        Self { rtol: 1e-6, atol: 1e-8, min_step: 1e-9, max_step: 5e-2, initial_step: 1e-4 }
    }

    /// Sets the maximum step (builder style).
    pub fn with_max_step(mut self, max_step: f64) -> Self {
        self.max_step = max_step;
        self
    }

    /// Sets the tolerances (builder style).
    pub fn with_tolerances(mut self, rtol: f64, atol: f64) -> Self {
        self.rtol = rtol;
        self.atol = atol;
        self
    }
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// One accepted adaptive step, including the data needed for dense
/// output on the step interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptedStep<const N: usize> {
    /// Step start time.
    pub t0: f64,
    /// Step end time.
    pub t1: f64,
    /// State at `t0`.
    pub y0: [f64; N],
    /// State at `t1`.
    pub y1: [f64; N],
    /// Derivative at `t0`.
    pub f0: [f64; N],
    /// Derivative at `t1`.
    pub f1: [f64; N],
    /// Local error estimate (scaled norm; ≤ 1 means accepted).
    pub error_norm: f64,
}

impl<const N: usize> AcceptedStep<N> {
    /// Cubic Hermite interpolation of the state at `t ∈ [t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` lies outside the step interval by more than a
    /// floating-point sliver.
    pub fn interpolate(&self, t: f64) -> [f64; N] {
        let h = self.t1 - self.t0;
        if h == 0.0 {
            return self.y1;
        }
        let s = (t - self.t0) / h;
        assert!(
            (-1e-9..=1.0 + 1e-9).contains(&s),
            "interpolation time {t} outside step [{}, {}]",
            self.t0,
            self.t1
        );
        let s = s.clamp(0.0, 1.0);
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = h00 * self.y0[i] + h10 * h * self.f0[i] + h01 * self.y1[i] + h11 * h * self.f1[i];
        }
        out
    }
}

/// Adaptive Bogacki–Shampine 2(3) solver (the `ode23` method).
///
/// The solver holds its current step-size estimate between calls so that
/// a caller-driven loop (such as the co-simulation engine, which must
/// stop at comparator events) retains full step-control history.
///
/// # Examples
///
/// ```
/// use pn_circuit::ode::{AdaptiveOptions, Rk23};
///
/// # fn main() -> Result<(), pn_circuit::CircuitError> {
/// // dy/dt = -y, y(0) = 1  ⇒  y(1) = e⁻¹.
/// let mut solver = Rk23::new(AdaptiveOptions::new());
/// let mut f = |_t: f64, y: &[f64; 1]| [-y[0]];
/// let y = solver.integrate(&mut f, 0.0, [1.0], 1.0)?;
/// assert!((y[0] - (-1.0f64).exp()).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Rk23 {
    options: AdaptiveOptions,
    h: f64,
}

impl Rk23 {
    /// Creates a solver with the given options.
    pub fn new(options: AdaptiveOptions) -> Self {
        Self { h: options.initial_step, options }
    }

    /// The solver options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.options
    }

    /// Current step-size estimate.
    pub fn current_step(&self) -> f64 {
        self.h
    }

    /// Resets the step-size estimate (e.g. after a discontinuity in the
    /// right-hand side such as an OPP change).
    pub fn reset_step(&mut self) {
        self.h = self.options.initial_step;
    }

    /// Notifies the controller of a right-hand-side discontinuity at a
    /// step boundary (an OPP change, a threshold reprogram). Unlike
    /// [`Rk23::reset_step`], this keeps the learned step estimate —
    /// the first step after the jump is error-controlled like any
    /// other and is simply rejected and shrunk if the new dynamics
    /// need it, which costs one extra derivative sweep instead of the
    /// four-to-five re-growth steps a full reset forces.
    pub fn notify_discontinuity(&mut self) {
        // Trim the estimate slightly: the post-event derivative often
        // differs enough that a full-size first step would be rejected
        // outright; half the estimate keeps most of the learned size
        // while making first-try acceptance the common case.
        self.h = (0.5 * self.h).clamp(self.options.min_step, self.options.max_step);
    }

    /// Performs one accepted adaptive step from `(t, y)`, never stepping
    /// past `t_limit`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::InvalidArgument`] if `t_limit <= t`,
    /// * [`CircuitError::StepSizeUnderflow`] if the error tolerance
    ///   cannot be met at the minimum step size.
    pub fn step<const N: usize>(
        &mut self,
        system: &mut impl OdeSystem<N>,
        t: f64,
        y: &[f64; N],
        t_limit: f64,
    ) -> Result<AcceptedStep<N>, CircuitError> {
        if !(t_limit > t) {
            return Err(CircuitError::InvalidArgument("t_limit must exceed t"));
        }
        let opts = self.options;
        let mut h = self.h.clamp(opts.min_step, opts.max_step).min(t_limit - t);
        let f0 = system.eval(t, y);
        loop {
            // Bogacki–Shampine tableau.
            let k1 = f0;
            let k2 = system.eval(t + 0.5 * h, &axpy(y, 0.5 * h, &k1));
            let k3 = system.eval(t + 0.75 * h, &axpy(y, 0.75 * h, &k2));
            let mut y1 = *y;
            for i in 0..N {
                y1[i] += h * (2.0 / 9.0 * k1[i] + 1.0 / 3.0 * k2[i] + 4.0 / 9.0 * k3[i]);
            }
            let k4 = system.eval(t + h, &y1);
            // Embedded 2nd-order solution for the error estimate.
            let mut error_norm: f64 = 0.0;
            for i in 0..N {
                let z = y[i]
                    + h * (7.0 / 24.0 * k1[i] + 0.25 * k2[i] + 1.0 / 3.0 * k3[i] + 0.125 * k4[i]);
                let scale = opts.atol + opts.rtol * y[i].abs().max(y1[i].abs());
                error_norm = error_norm.max(((y1[i] - z) / scale).abs());
            }
            if error_norm <= 1.0 || h <= opts.min_step {
                if error_norm > 1.0 && h <= opts.min_step {
                    // Accept anyway but only if the absolute error is
                    // small; otherwise report underflow.
                    if error_norm > 1e3 {
                        return Err(CircuitError::StepSizeUnderflow { t, step: h });
                    }
                }
                // Step accepted: update the stored step estimate for the
                // next call (standard I-controller, order 3 ⇒ exponent 1/3).
                let grow = if error_norm > 0.0 {
                    (0.9 * (1.0 / error_norm).powf(1.0 / 3.0)).clamp(0.2, 5.0)
                } else {
                    5.0
                };
                self.h = (h * grow).clamp(opts.min_step, opts.max_step);
                return Ok(AcceptedStep { t0: t, t1: t + h, y0: *y, y1, f0: k1, f1: k4, error_norm });
            }
            // Step rejected: shrink and retry.
            let shrink = (0.9 * (1.0 / error_norm).powf(1.0 / 3.0)).clamp(0.2, 0.9);
            h = (h * shrink).max(opts.min_step);
        }
    }

    /// Integrates from `t0` to `t_end`, returning the final state.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Rk23::step`]; additionally rejects a
    /// backwards time span.
    pub fn integrate<const N: usize>(
        &mut self,
        system: &mut impl OdeSystem<N>,
        t0: f64,
        y0: [f64; N],
        t_end: f64,
    ) -> Result<[f64; N], CircuitError> {
        if t_end < t0 {
            return Err(CircuitError::InvalidArgument("t_end must not precede t0"));
        }
        let mut t = t0;
        let mut y = y0;
        while t < t_end {
            let step = self.step(system, t, &y, t_end)?;
            t = step.t1;
            y = step.y1;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exp_decay(_t: f64, y: &[f64; 1]) -> [f64; 1] {
        [-y[0]]
    }

    #[test]
    fn euler_first_order_convergence() {
        // Halving h should roughly halve the error for Euler.
        let e1 = (Euler.integrate(&mut exp_decay, 0.0, [1.0], 1.0, 1e-2).unwrap()[0]
            - (-1.0f64).exp())
        .abs();
        let e2 = (Euler.integrate(&mut exp_decay, 0.0, [1.0], 1.0, 5e-3).unwrap()[0]
            - (-1.0f64).exp())
        .abs();
        let ratio = e1 / e2;
        assert!(ratio > 1.7 && ratio < 2.3, "order-1 ratio was {ratio}");
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let e1 = (Rk4.integrate(&mut exp_decay, 0.0, [1.0], 1.0, 1e-1).unwrap()[0]
            - (-1.0f64).exp())
        .abs();
        let e2 = (Rk4.integrate(&mut exp_decay, 0.0, [1.0], 1.0, 5e-2).unwrap()[0]
            - (-1.0f64).exp())
        .abs();
        let ratio = e1 / e2;
        assert!(ratio > 12.0 && ratio < 20.0, "order-4 ratio was {ratio}");
    }

    #[test]
    fn rk23_matches_analytic_exponential() {
        let mut solver = Rk23::new(AdaptiveOptions::new().with_max_step(0.5));
        let y = solver.integrate(&mut exp_decay, 0.0, [1.0], 3.0).unwrap();
        assert!((y[0] - (-3.0f64).exp()).abs() < 1e-5);
    }

    #[test]
    fn rk23_two_dimensional_oscillator_conserves_energy_approximately() {
        // y'' = -y as a 2-system; energy drift must stay tiny over 10 periods.
        let mut f = |_t: f64, y: &[f64; 2]| [y[1], -y[0]];
        let mut solver =
            Rk23::new(AdaptiveOptions::new().with_tolerances(1e-9, 1e-12).with_max_step(0.1));
        let y = solver.integrate(&mut f, 0.0, [1.0, 0.0], 20.0 * std::f64::consts::PI).unwrap();
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-4, "energy drift {energy}");
    }

    #[test]
    fn notify_discontinuity_keeps_the_learned_step() {
        let mut solver = Rk23::new(AdaptiveOptions::new());
        // Let the controller grow the step on an easy problem.
        solver.integrate(&mut exp_decay, 0.0, [1.0], 2.0).unwrap();
        let learned = solver.current_step();
        assert!(learned > 10.0 * solver.options().initial_step, "step never grew: {learned}");
        solver.notify_discontinuity();
        let kept = solver.current_step();
        assert!((kept - 0.5 * learned).abs() < 1e-15, "kept {kept} vs learned {learned}");
        // A full reset still collapses to the initial guess.
        solver.reset_step();
        assert_eq!(solver.current_step(), solver.options().initial_step);
        // And the trimmed estimate stays within the configured bounds.
        let mut tiny = Rk23::new(AdaptiveOptions::new());
        for _ in 0..100 {
            tiny.notify_discontinuity();
        }
        assert!(tiny.current_step() >= tiny.options().min_step);
    }

    #[test]
    fn rk23_respects_t_limit() {
        let mut solver = Rk23::new(AdaptiveOptions::new());
        let step = solver.step(&mut exp_decay, 0.0, &[1.0], 1e-6).unwrap();
        assert!(step.t1 <= 1e-6 + 1e-18);
    }

    #[test]
    fn rk23_rejects_backwards_span() {
        let mut solver = Rk23::new(AdaptiveOptions::new());
        assert!(matches!(
            solver.integrate(&mut exp_decay, 1.0, [1.0], 0.0),
            Err(CircuitError::InvalidArgument(_))
        ));
    }

    #[test]
    fn fixed_step_rejects_bad_h() {
        assert!(Euler.integrate(&mut exp_decay, 0.0, [1.0], 1.0, 0.0).is_err());
        assert!(Rk4.integrate(&mut exp_decay, 0.0, [1.0], 1.0, f64::NAN).is_err());
    }

    #[test]
    fn dense_output_endpoints_match() {
        let mut solver = Rk23::new(AdaptiveOptions::new());
        let step = solver.step(&mut exp_decay, 0.0, &[1.0], 0.5).unwrap();
        let at_start = step.interpolate(step.t0);
        let at_end = step.interpolate(step.t1);
        assert!((at_start[0] - step.y0[0]).abs() < 1e-12);
        assert!((at_end[0] - step.y1[0]).abs() < 1e-12);
    }

    #[test]
    fn dense_output_midpoint_accuracy() {
        let mut solver = Rk23::new(AdaptiveOptions::new().with_max_step(0.2));
        let step = solver.step(&mut exp_decay, 0.0, &[1.0], 0.2).unwrap();
        let tm = 0.5 * (step.t0 + step.t1);
        let interp = step.interpolate(tm)[0];
        assert!((interp - (-tm).exp()).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn rk23_exponential_growth(rate in -2.0f64..2.0, t_end in 0.1f64..3.0) {
            let mut f = move |_t: f64, y: &[f64; 1]| [rate * y[0]];
            let mut solver = Rk23::new(AdaptiveOptions::new().with_max_step(0.25));
            let y = solver.integrate(&mut f, 0.0, [1.0], t_end).unwrap();
            let exact = (rate * t_end).exp();
            prop_assert!((y[0] - exact).abs() < 1e-4 * (1.0 + exact.abs()));
        }

        #[test]
        fn rk4_beats_euler(h in 1e-3f64..5e-2) {
            let exact = (-1.0f64).exp();
            let e_euler = (Euler.integrate(&mut exp_decay, 0.0, [1.0], 1.0, h).unwrap()[0] - exact).abs();
            let e_rk4 = (Rk4.integrate(&mut exp_decay, 0.0, [1.0], 1.0, h).unwrap()[0] - exact).abs();
            prop_assert!(e_rk4 <= e_euler);
        }
    }
}
