//! Zero-crossing location on continuous trajectories.
//!
//! The co-simulation engine integrates the capacitor voltage with
//! [`Rk23`](crate::ode::Rk23) and must stop *exactly* where `VC` crosses
//! a comparator threshold — the moment the monitoring hardware of the
//! paper's Fig. 9 raises an interrupt. These helpers locate such
//! crossings on a step's dense output by bisection, mirroring Simulink's
//! zero-crossing detection.

use crate::CircuitError;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingDirection {
    /// The signal moved from below the threshold to above it.
    Rising,
    /// The signal moved from above the threshold to below it.
    Falling,
}

/// A located crossing event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Time at which the signal met the threshold.
    pub t: f64,
    /// Crossing direction.
    pub direction: CrossingDirection,
}

/// Locates where `g(t)` crosses zero on `[a, b]` by bisection, given
/// that `g(a)` and `g(b)` straddle zero.
///
/// Returns `None` when no sign change exists on the interval. The
/// returned time is accurate to `tol` seconds.
///
/// # Examples
///
/// ```
/// use pn_circuit::events::bisect_crossing;
///
/// let g = |t: f64| t - 0.3;
/// let c = bisect_crossing(&g, 0.0, 1.0, 1e-12).expect("crossing exists");
/// assert!((c.t - 0.3).abs() < 1e-9);
/// ```
pub fn bisect_crossing(g: &impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Option<Crossing> {
    let ga = g(a);
    let gb = g(b);
    if ga == 0.0 {
        return Some(Crossing { t: a, direction: direction_of(ga, gb) });
    }
    if ga.signum() == gb.signum() {
        return None;
    }
    let direction = direction_of(ga, gb);
    let (mut lo, mut hi) = (a, b);
    let mut g_lo = ga;
    // 128 iterations is enough to hit f64 resolution on any interval.
    for _ in 0..128 {
        if (hi - lo) <= tol {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let g_mid = g(mid);
        if g_mid == 0.0 {
            return Some(Crossing { t: mid, direction });
        }
        if g_mid.signum() == g_lo.signum() {
            lo = mid;
            g_lo = g_mid;
        } else {
            hi = mid;
        }
    }
    // Report the far edge of the bracket so the caller lands *past* the
    // crossing, guaranteeing the comparator condition holds at the event.
    Some(Crossing { t: hi, direction })
}

fn direction_of(ga: f64, gb: f64) -> CrossingDirection {
    if ga < gb {
        CrossingDirection::Rising
    } else {
        CrossingDirection::Falling
    }
}

/// Locates the first crossing of `signal(t)` through `threshold` on
/// `[a, b]`, scanning `subdivisions` uniform sub-intervals so that an
/// even number of crossings inside the step cannot be missed.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidArgument`] when `b < a` or
/// `subdivisions == 0`.
///
/// # Examples
///
/// ```
/// use pn_circuit::events::first_threshold_crossing;
///
/// # fn main() -> Result<(), pn_circuit::CircuitError> {
/// let wave = |t: f64| (t * std::f64::consts::PI).sin();
/// let c = first_threshold_crossing(&wave, 0.5, 0.0, 2.0, 8, 1e-10)?
///     .expect("sine crosses 0.5 twice on [0, 2]");
/// assert!((c.t - 1.0 / 6.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn first_threshold_crossing(
    signal: &impl Fn(f64) -> f64,
    threshold: f64,
    a: f64,
    b: f64,
    subdivisions: usize,
    tol: f64,
) -> Result<Option<Crossing>, CircuitError> {
    if b < a {
        return Err(CircuitError::InvalidArgument("interval end precedes start"));
    }
    if subdivisions == 0 {
        return Err(CircuitError::InvalidArgument("subdivisions must be positive"));
    }
    let g = |t: f64| signal(t) - threshold;
    let width = (b - a) / subdivisions as f64;
    let mut left = a;
    let mut g_left = g(left);
    for i in 1..=subdivisions {
        let right = if i == subdivisions { b } else { a + width * i as f64 };
        let g_right = g(right);
        if g_left == 0.0 {
            // Starting exactly on the threshold does not count as a new
            // crossing; wait for the signal to move away first.
        } else if g_left.signum() != g_right.signum() {
            return Ok(bisect_crossing(&g, left, right, tol));
        }
        left = right;
        g_left = g_right;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn detects_falling_direction() {
        let g = |t: f64| 1.0 - t;
        let c = bisect_crossing(&g, 0.0, 2.0, 1e-12).unwrap();
        assert_eq!(c.direction, CrossingDirection::Falling);
        assert!((c.t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_crossing_returns_none() {
        let g = |_t: f64| 1.0;
        assert!(bisect_crossing(&g, 0.0, 1.0, 1e-12).is_none());
    }

    #[test]
    fn subdivision_catches_double_crossing() {
        // Parabola dips below zero and comes back inside one interval.
        let signal = |t: f64| (t - 0.5) * (t - 0.5);
        // signal - 0.04 has roots at 0.3 and 0.7.
        let c = first_threshold_crossing(&signal, 0.04, 0.0, 1.0, 16, 1e-10).unwrap().unwrap();
        assert!((c.t - 0.3).abs() < 1e-6, "found {}", c.t);
        assert_eq!(c.direction, CrossingDirection::Falling);
    }

    #[test]
    fn starting_on_threshold_is_not_a_crossing() {
        let signal = |t: f64| t;
        let c = first_threshold_crossing(&signal, 0.0, 0.0, 1.0, 4, 1e-10).unwrap();
        assert!(c.is_none(), "got {c:?}");
    }

    #[test]
    fn rejects_invalid_interval() {
        let signal = |t: f64| t;
        assert!(first_threshold_crossing(&signal, 0.0, 1.0, 0.0, 4, 1e-10).is_err());
        assert!(first_threshold_crossing(&signal, 0.0, 0.0, 1.0, 0, 1e-10).is_err());
    }

    proptest! {
        #[test]
        fn linear_crossings_are_exact(threshold in -0.9f64..0.9, slope in 1.0f64..10.0) {
            let signal = move |t: f64| slope * (t - 1.0);
            // crossing at t = 1 + threshold/slope, inside [0, 3] for our ranges
            let expected = 1.0 + threshold / slope;
            let c = first_threshold_crossing(&signal, threshold, 0.0, 3.0, 8, 1e-12)
                .unwrap().unwrap();
            prop_assert!((c.t - expected).abs() < 1e-8);
            prop_assert_eq!(c.direction, CrossingDirection::Rising);
        }

        #[test]
        fn crossing_time_is_inside_interval(a in 0.0f64..1.0, width in 0.1f64..5.0) {
            let b = a + width;
            let signal = |t: f64| t.sin();
            if let Some(c) = first_threshold_crossing(&signal, 0.5, a, b, 32, 1e-10).unwrap() {
                prop_assert!(c.t >= a - 1e-9 && c.t <= b + 1e-9);
                // At the reported time, the signal is at the threshold.
                prop_assert!((signal(c.t) - 0.5).abs() < 1e-6);
            }
        }
    }
}
