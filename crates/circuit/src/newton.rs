//! Safeguarded Newton–Raphson root finding for scalar equations.
//!
//! The solar-cell equation (paper Eq. 4) is implicit in the cell current
//! `I`; it is solved here with Newton iteration, falling back to interval
//! bisection whenever an iterate leaves a caller-supplied bracket. The
//! combination is globally convergent on monotone residuals such as the
//! single-diode equation.

use crate::CircuitError;

/// Configuration for [`solve`] and [`solve_bracketed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Absolute tolerance on the residual `|f(x)|`.
    pub residual_tolerance: f64,
    /// Absolute tolerance on the step `|Δx|`.
    pub step_tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
}

impl NewtonOptions {
    /// Defaults tuned for the PV operating-point solve: tight residual
    /// (sub-microamp) with a generous iteration budget.
    pub fn new() -> Self {
        Self {
            residual_tolerance: 1e-10,
            step_tolerance: 1e-12,
            max_iterations: 64,
        }
    }
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a successful root solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonSolution {
    /// The root estimate.
    pub root: f64,
    /// Residual `|f(root)|`.
    pub residual: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Solves `f(x) = 0` by plain Newton iteration from `x0`.
///
/// `f_df` must return the pair `(f(x), f'(x))`.
///
/// # Errors
///
/// Returns [`CircuitError::SolveDiverged`] when the iteration budget is
/// exhausted or an iterate becomes non-finite.
///
/// # Examples
///
/// ```
/// use pn_circuit::newton::{solve, NewtonOptions};
///
/// # fn main() -> Result<(), pn_circuit::CircuitError> {
/// // sqrt(2) as the positive root of x² − 2.
/// let sol = solve(|x| (x * x - 2.0, 2.0 * x), 1.0, NewtonOptions::new())?;
/// assert!((sol.root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve(
    mut f_df: impl FnMut(f64) -> (f64, f64),
    x0: f64,
    options: NewtonOptions,
) -> Result<NewtonSolution, CircuitError> {
    let mut x = x0;
    let mut last_residual = f64::INFINITY;
    for iteration in 0..options.max_iterations {
        let (fx, dfx) = f_df(x);
        last_residual = fx.abs();
        if last_residual <= options.residual_tolerance {
            return Ok(NewtonSolution { root: x, residual: last_residual, iterations: iteration });
        }
        if !fx.is_finite() || !dfx.is_finite() || dfx == 0.0 {
            break;
        }
        let step = fx / dfx;
        x -= step;
        if !x.is_finite() {
            break;
        }
        if step.abs() <= options.step_tolerance {
            let (fx, _) = f_df(x);
            return Ok(NewtonSolution {
                root: x,
                residual: fx.abs(),
                iterations: iteration + 1,
            });
        }
    }
    Err(CircuitError::SolveDiverged {
        last: x,
        residual: last_residual,
        iterations: options.max_iterations,
    })
}

/// Solves `f(x) = 0` by Newton iteration safeguarded by bisection on the
/// bracket `[a, b]`.
///
/// Whenever a Newton step leaves the bracket (or the derivative
/// vanishes) the method falls back to the bracket midpoint, so it is
/// globally convergent whenever `f(a)` and `f(b)` have opposite signs.
///
/// # Errors
///
/// * [`CircuitError::BracketInvalid`] if `f(a)` and `f(b)` have the same
///   sign,
/// * [`CircuitError::SolveDiverged`] if the iteration budget runs out.
///
/// # Examples
///
/// ```
/// use pn_circuit::newton::{solve_bracketed, NewtonOptions};
///
/// # fn main() -> Result<(), pn_circuit::CircuitError> {
/// let sol = solve_bracketed(|x| (x.exp() - 3.0, x.exp()), 0.0, 2.0, NewtonOptions::new())?;
/// assert!((sol.root - 3f64.ln()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve_bracketed(
    mut f_df: impl FnMut(f64) -> (f64, f64),
    a: f64,
    b: f64,
    options: NewtonOptions,
) -> Result<NewtonSolution, CircuitError> {
    let (mut lo, mut hi) = if a <= b { (a, b) } else { (b, a) };
    let (f_lo, _) = f_df(lo);
    let (f_hi, _) = f_df(hi);
    if f_lo == 0.0 {
        return Ok(NewtonSolution { root: lo, residual: 0.0, iterations: 0 });
    }
    if f_hi == 0.0 {
        return Ok(NewtonSolution { root: hi, residual: 0.0, iterations: 0 });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(CircuitError::BracketInvalid { a: lo, b: hi });
    }
    let mut sign_lo = f_lo.signum();
    let mut x = 0.5 * (lo + hi);
    let mut last_residual = f64::INFINITY;
    for iteration in 0..options.max_iterations {
        let (fx, dfx) = f_df(x);
        last_residual = fx.abs();
        if last_residual <= options.residual_tolerance || (hi - lo) <= options.step_tolerance {
            return Ok(NewtonSolution { root: x, residual: last_residual, iterations: iteration });
        }
        // Maintain the bracket.
        if fx.signum() == sign_lo {
            lo = x;
        } else {
            hi = x;
        }
        // Newton proposal, replaced by bisection when unusable.
        let newton_x = if dfx != 0.0 && dfx.is_finite() && fx.is_finite() {
            x - fx / dfx
        } else {
            f64::NAN
        };
        x = if newton_x.is_finite() && newton_x > lo && newton_x < hi {
            newton_x
        } else {
            0.5 * (lo + hi)
        };
        // Re-establish which side is "low sign" in case of re-bracketing.
        sign_lo = {
            let (f_lo2, _) = f_df(lo);
            if f_lo2 == 0.0 {
                return Ok(NewtonSolution { root: lo, residual: 0.0, iterations: iteration });
            }
            f_lo2.signum()
        };
    }
    Err(CircuitError::SolveDiverged {
        last: x,
        residual: last_residual,
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_newton_finds_sqrt() {
        let sol = solve(|x| (x * x - 9.0, 2.0 * x), 1.0, NewtonOptions::new()).unwrap();
        assert!((sol.root - 3.0).abs() < 1e-10);
        assert!(sol.iterations < 20);
    }

    #[test]
    fn plain_newton_reports_divergence() {
        // f(x) = x^(1/3) has an infinite-derivative root that Newton
        // overshoots forever: x_{n+1} = -2 x_n.
        let err = solve(
            |x| (x.signum() * x.abs().powf(1.0 / 3.0), (1.0 / 3.0) * x.abs().powf(-2.0 / 3.0)),
            1.0,
            NewtonOptions { max_iterations: 30, ..NewtonOptions::new() },
        )
        .unwrap_err();
        match err {
            CircuitError::SolveDiverged { iterations, .. } => assert_eq!(iterations, 30),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bracketed_rejects_same_sign_endpoints() {
        let err =
            solve_bracketed(|x| (x * x + 1.0, 2.0 * x), -1.0, 1.0, NewtonOptions::new()).unwrap_err();
        assert!(matches!(err, CircuitError::BracketInvalid { .. }));
    }

    #[test]
    fn bracketed_survives_bad_derivative() {
        // Derivative reported as zero everywhere: must fall back to bisection.
        let sol = solve_bracketed(|x| (x - 0.25, 0.0), 0.0, 1.0, NewtonOptions::new()).unwrap();
        assert!((sol.root - 0.25).abs() < 1e-9);
    }

    #[test]
    fn bracketed_handles_reversed_endpoints() {
        let sol = solve_bracketed(|x| (x - 0.5, 1.0), 1.0, 0.0, NewtonOptions::new()).unwrap();
        assert!((sol.root - 0.5).abs() < 1e-9);
    }

    #[test]
    fn exact_endpoint_root_is_returned_immediately() {
        let sol = solve_bracketed(|x| (x, 1.0), 0.0, 1.0, NewtonOptions::new()).unwrap();
        assert_eq!(sol.root, 0.0);
        assert_eq!(sol.iterations, 0);
    }

    proptest! {
        #[test]
        fn bracketed_finds_roots_of_shifted_exponential(target in 0.05f64..20.0) {
            // Root of e^x − target on a wide bracket.
            let sol = solve_bracketed(
                |x| (x.exp() - target, x.exp()),
                -5.0,
                5.0,
                NewtonOptions::new(),
            ).unwrap();
            prop_assert!((sol.root - target.ln()).abs() < 1e-8);
        }

        #[test]
        fn plain_newton_square_roots(target in 0.01f64..1e6) {
            let sol = solve(|x| (x * x - target, 2.0 * x), target.max(1.0), NewtonOptions::new()).unwrap();
            prop_assert!((sol.root - target.sqrt()).abs() < 1e-6 * (1.0 + target.sqrt()));
        }
    }
}
