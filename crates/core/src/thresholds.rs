//! The dynamic threshold pair (paper Eq. 1 and the tracking rule).
//!
//! At start-up the thresholds are calibrated to straddle the current
//! capacitor voltage:
//!
//! ```text
//! Vhigh(0) = VC + Vwidth/2      Vlow(0) = VC − Vwidth/2
//! ```
//!
//! Each `Vlow` crossing then shifts *both* thresholds down by `Vq`,
//! each `Vhigh` crossing shifts both up — the pair walks after the
//! harvested supply. The pair is clamped to a tracking window so the
//! low threshold never chases `VC` below the brownout voltage (where
//! an interrupt would be useless) and never walks above the board's
//! rated maximum.

use crate::CoreError;
use pn_units::Volts;

/// The `Vhigh`/`Vlow` pair with its tracking window.
///
/// # Examples
///
/// ```
/// use pn_core::thresholds::ThresholdPair;
/// use pn_units::Volts;
///
/// # fn main() -> Result<(), pn_core::CoreError> {
/// let mut pair = ThresholdPair::centered(
///     Volts::new(5.3),
///     Volts::new(0.2),
///     Volts::new(4.1),
///     Volts::new(5.9),
/// )?;
/// assert!((pair.high() - Volts::new(5.4)).abs() < Volts::new(1e-9));
/// assert!((pair.low() - Volts::new(5.2)).abs() < Volts::new(1e-9));
/// pair.shift_down(Volts::new(0.08));
/// assert!((pair.low() - Volts::new(5.12)).abs() < Volts::new(1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPair {
    high: Volts,
    low: Volts,
    window_min: Volts,
    window_max: Volts,
}

impl ThresholdPair {
    /// Calibrates the pair around `vc` per Eq. (1), then clamps it into
    /// `[window_min, window_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the window is
    /// inverted or narrower than `width`.
    pub fn centered(
        vc: Volts,
        width: Volts,
        window_min: Volts,
        window_max: Volts,
    ) -> Result<Self, CoreError> {
        if window_max <= window_min {
            return Err(CoreError::InvalidParameter("tracking window is inverted"));
        }
        if width > window_max - window_min {
            return Err(CoreError::InvalidParameter("width exceeds the tracking window"));
        }
        if !(width.value() > 0.0) {
            return Err(CoreError::InvalidParameter("width must be positive"));
        }
        let mut pair = Self {
            high: vc + width * 0.5,
            low: vc - width * 0.5,
            window_min,
            window_max,
        };
        pair.clamp_into_window();
        Ok(pair)
    }

    /// The upper threshold `Vhigh`.
    pub fn high(&self) -> Volts {
        self.high
    }

    /// The lower threshold `Vlow`.
    pub fn low(&self) -> Volts {
        self.low
    }

    /// Current separation between the thresholds.
    pub fn width(&self) -> Volts {
        self.high - self.low
    }

    /// The tracking window as `(min, max)`.
    pub fn window(&self) -> (Volts, Volts) {
        (self.window_min, self.window_max)
    }

    /// `true` when `vc` lies strictly between the thresholds.
    pub fn contains(&self, vc: Volts) -> bool {
        vc > self.low && vc < self.high
    }

    /// Shifts both thresholds down by `vq` (a `Vlow` crossing
    /// response), clamped so `low` never drops below the window floor.
    pub fn shift_down(&mut self, vq: Volts) {
        let allowed = (self.low - self.window_min).max(Volts::ZERO);
        let shift = vq.min(allowed);
        self.low -= shift;
        self.high -= shift;
    }

    /// Shifts both thresholds up by `vq` (a `Vhigh` crossing response),
    /// clamped so `high` never exceeds the window ceiling.
    pub fn shift_up(&mut self, vq: Volts) {
        let allowed = (self.window_max - self.high).max(Volts::ZERO);
        let shift = vq.min(allowed);
        self.low += shift;
        self.high += shift;
    }

    /// Re-centres the pair on a new `vc` (used when the governor
    /// resynchronises after an excursion), preserving the current
    /// width.
    pub fn recenter(&mut self, vc: Volts) {
        let half = self.width() * 0.5;
        self.high = vc + half;
        self.low = vc - half;
        self.clamp_into_window();
    }

    fn clamp_into_window(&mut self) {
        if self.low < self.window_min {
            let shift = self.window_min - self.low;
            self.low += shift;
            self.high += shift;
        }
        if self.high > self.window_max {
            let shift = self.high - self.window_max;
            self.low -= shift;
            self.high -= shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pair() -> ThresholdPair {
        ThresholdPair::centered(
            Volts::new(5.3),
            Volts::new(0.144),
            Volts::new(4.1),
            Volts::new(5.9),
        )
        .unwrap()
    }

    #[test]
    fn eq1_initialisation() {
        let p = pair();
        assert!((p.high().value() - 5.372).abs() < 1e-12);
        assert!((p.low().value() - 5.228).abs() < 1e-12);
        assert!(p.contains(Volts::new(5.3)));
    }

    #[test]
    fn shifts_preserve_width() {
        let mut p = pair();
        let w = p.width();
        p.shift_down(Volts::new(0.0479));
        assert!((p.width() - w).abs() < Volts::new(1e-12));
        p.shift_up(Volts::new(0.0479));
        assert!((p.width() - w).abs() < Volts::new(1e-12));
    }

    #[test]
    fn low_threshold_stops_at_window_floor() {
        let mut p = pair();
        for _ in 0..100 {
            p.shift_down(Volts::new(0.05));
        }
        assert!((p.low() - Volts::new(4.1)).abs() < Volts::new(1e-9));
        // Width is still intact — the whole pair stopped.
        assert!((p.width().value() - 0.144).abs() < 1e-9);
    }

    #[test]
    fn high_threshold_stops_at_window_ceiling() {
        let mut p = pair();
        for _ in 0..100 {
            p.shift_up(Volts::new(0.05));
        }
        assert!((p.high() - Volts::new(5.9)).abs() < Volts::new(1e-9));
    }

    #[test]
    fn centered_clamps_near_the_rails() {
        // Centring at 4.12 V would push Vlow below the floor; the pair
        // must slide up instead.
        let p = ThresholdPair::centered(
            Volts::new(4.12),
            Volts::new(0.2),
            Volts::new(4.1),
            Volts::new(5.9),
        )
        .unwrap();
        assert!(p.low() >= Volts::new(4.1));
        assert!((p.width().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recenter_preserves_width() {
        let mut p = pair();
        p.recenter(Volts::new(4.8));
        assert!((p.width().value() - 0.144).abs() < 1e-12);
        assert!(p.contains(Volts::new(4.8)));
    }

    #[test]
    fn construction_validation() {
        assert!(ThresholdPair::centered(
            Volts::new(5.0),
            Volts::new(0.2),
            Volts::new(5.9),
            Volts::new(4.1)
        )
        .is_err());
        assert!(ThresholdPair::centered(
            Volts::new(5.0),
            Volts::new(3.0),
            Volts::new(4.1),
            Volts::new(5.9)
        )
        .is_err());
        assert!(ThresholdPair::centered(
            Volts::new(5.0),
            Volts::ZERO,
            Volts::new(4.1),
            Volts::new(5.9)
        )
        .is_err());
    }

    proptest! {
        #[test]
        fn invariants_hold_under_random_walks(
            steps in proptest::collection::vec(proptest::bool::ANY, 0..200),
            vq_mv in 1.0f64..200.0,
        ) {
            let mut p = pair();
            let vq = Volts::from_millivolts(vq_mv);
            for up in steps {
                if up { p.shift_up(vq) } else { p.shift_down(vq) }
                prop_assert!(p.low() < p.high());
                prop_assert!(p.low() >= Volts::new(4.1) - Volts::new(1e-9));
                prop_assert!(p.high() <= Volts::new(5.9) + Volts::new(1e-9));
                prop_assert!((p.width().value() - 0.144).abs() < 1e-9);
            }
        }
    }
}
