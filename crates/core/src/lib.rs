//! The power-neutral performance scaling governor — the primary
//! contribution of *Power Neutral Performance Scaling for Energy
//! Harvesting MP-SoCs* (Fletcher, Balsamo, Merrett — DATE 2017).
//!
//! # The idea
//!
//! A directly-coupled energy-harvesting system has no battery to hide
//! behind: the instantaneous power drawn by the MP-SoC must track the
//! instantaneous power harvested. The governor watches the voltage
//! `VC` across a tiny buffer capacitor through two *dynamic* hardware
//! thresholds `Vhigh`/`Vlow` separated by `Vwidth`:
//!
//! * every crossing triggers a **DVFS response** — one step through the
//!   8-level frequency ladder (linear control, absorbs "micro"
//!   variability), and
//! * a **core hot-plug response** driven by the slope estimate
//!   `dVC/dt ≈ ±Vq/τ` (τ = time since the previous crossing): a `big`
//!   core is added/removed when the magnitude exceeds `β`, a `LITTLE`
//!   core when it exceeds `α` (derivative control, absorbs "macro"
//!   variability);
//! * afterwards both thresholds shift by `Vq` in the crossing
//!   direction, so the threshold pair *tracks* the harvest.
//!
//! Because consumption continuously matches harvest, `VC` settles at
//! the harvester's maximum-power-point voltage — the scheme performs
//! implicit MPPT with no extra hardware.
//!
//! # Modules
//!
//! * [`params`] — `Vwidth`, `Vq`, `α`, `β` parameter sets (paper
//!   presets included),
//! * [`thresholds`] — the dynamic threshold pair (Eq. 1 + tracking),
//! * [`scaling`] — slope estimation and core-scaling factors
//!   (Eqs. 2–3),
//! * [`governor`] — the [`governor::PowerNeutralGovernor`] state
//!   machine (Fig. 5),
//! * [`events`] — the [`events::Governor`] trait that the baseline
//!   Linux governors also implement,
//! * [`capacitance`] — buffer-capacitor sizing (§IV-A / Table I).
//!
//! # Examples
//!
//! ```
//! use pn_core::events::{Governor, GovernorEvent, ThresholdEdge};
//! use pn_core::governor::PowerNeutralGovernor;
//! use pn_core::params::ControlParams;
//! use pn_soc::opp::Opp;
//! use pn_soc::platform::Platform;
//! use pn_units::{Seconds, Volts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::odroid_xu4();
//! let mut gov = PowerNeutralGovernor::new(ControlParams::paper_optimal()?, &platform)?;
//! let start = gov.start(Seconds::ZERO, Volts::new(5.3), Opp::lowest());
//! assert!(start.thresholds.is_some()); // Eq. (1): thresholds straddle VC
//!
//! // Harvest drops: VC crosses Vlow 0.5 s later → frequency steps down.
//! let event = GovernorEvent::ThresholdCrossed {
//!     edge: ThresholdEdge::Low,
//!     vc: Volts::new(5.2),
//!     t: Seconds::new(0.5),
//! };
//! let action = gov.on_event(&event, Opp::new(pn_soc::cores::CoreConfig::new(4, 0)?, 3));
//! let target = action.target_opp.expect("a response is requested");
//! assert_eq!(target.level(), 2);
//! # Ok(())
//! # }
//! ```

pub mod capacitance;
pub mod events;
pub mod governor;
pub mod params;
pub mod scaling;
pub mod thresholds;

mod error;

pub use error::CoreError;
