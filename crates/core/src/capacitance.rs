//! Buffer-capacitance sizing (paper §IV-A and Table I).
//!
//! Power-neutral operation removes the *energy* buffer but still needs
//! a small *latency* buffer: enough capacitance to carry the board
//! through the worst-case performance transition — from the highest
//! OPP (maximum draw) to the lowest — when the harvest collapses. The
//! required capacitance follows from the charge drawn during the
//! transition and the voltage headroom the capacitor may spend:
//!
//! ```text
//! C_required = Q / (V_start − V_min)
//! ```
//!
//! Table I evaluates the two response orderings; the core-first
//! strategy draws several times less charge (hot-plugging at 1.4 GHz is
//! fast; at 200 MHz it is painfully slow), which is why the paper's rig
//! needs only 15-odd mF of theoretical buffer and uses a 47 mF part
//! for margin.

use crate::CoreError;
use pn_soc::opp::Opp;
use pn_soc::platform::Platform;
use pn_soc::transition::{plan_transition, transition_cost, TransitionStrategy};
use pn_units::{Coulombs, Farads, Seconds, Volts};

/// One row of Table I: the cost of a worst-case transition under one
/// strategy, and the buffer capacitance it implies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferSizing {
    /// The response ordering evaluated.
    pub strategy: TransitionStrategy,
    /// Transition time δ.
    pub duration: Seconds,
    /// Charge drawn, `Q = ∫I dt`.
    pub charge: Coulombs,
    /// Required capacitance `C = Q / (V_start − V_min)`.
    pub required_capacitance: Farads,
}

/// Computes the required buffer capacitance for a given transition
/// charge and voltage window.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the window is empty or
/// the charge negative.
///
/// # Examples
///
/// ```
/// use pn_core::capacitance::required_capacitance;
/// use pn_units::{Coulombs, Volts};
///
/// # fn main() -> Result<(), pn_core::CoreError> {
/// // Table I row (b): 0.0461 C across the 5.7 → 4.1 V window.
/// let c = required_capacitance(Coulombs::new(0.0461), Volts::new(5.7), Volts::new(4.1))?;
/// assert!((c.to_millifarads() - 28.8).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
pub fn required_capacitance(
    charge: Coulombs,
    v_start: Volts,
    v_min: Volts,
) -> Result<Farads, CoreError> {
    if v_start <= v_min {
        return Err(CoreError::InvalidParameter("v_start must exceed v_min"));
    }
    if charge.value() < 0.0 {
        return Err(CoreError::InvalidParameter("charge must be non-negative"));
    }
    Ok(charge / (v_start - v_min))
}

/// Evaluates the worst-case (highest → lowest OPP) transition for one
/// strategy on a platform, Table I style.
///
/// The charge is integrated at the *minimum* operating voltage — the
/// paper's "whilst operating at the lowest voltage" worst case, where
/// current draw for a given power is largest.
///
/// # Errors
///
/// Propagates planning/costing failures as [`CoreError::InvalidPlatform`].
pub fn worst_case_sizing(
    platform: &Platform,
    strategy: TransitionStrategy,
) -> Result<BufferSizing, CoreError> {
    let table = platform.frequencies();
    let window = platform.voltage_window();
    let plan = plan_transition(
        Opp::highest(table),
        Opp::lowest(),
        strategy,
        table,
        platform.latency(),
    )
    .map_err(|_| CoreError::InvalidPlatform("transition planning failed"))?;
    let cost = transition_cost(&plan, platform.power(), table, window.min)
        .map_err(|_| CoreError::InvalidPlatform("transition costing failed"))?;
    let required = required_capacitance(cost.charge, window.max, window.min)?;
    Ok(BufferSizing {
        strategy,
        duration: cost.duration,
        charge: cost.charge,
        required_capacitance: required,
    })
}

/// Evaluates both Table I strategies and returns `(frequency_first,
/// core_first)`.
///
/// # Errors
///
/// Propagates [`worst_case_sizing`] failures.
pub fn table1(platform: &Platform) -> Result<(BufferSizing, BufferSizing), CoreError> {
    Ok((
        worst_case_sizing(platform, TransitionStrategy::FrequencyFirst)?,
        worst_case_sizing(platform, TransitionStrategy::CoreFirst)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_capacitance_formula() {
        let c = required_capacitance(Coulombs::new(0.16), Volts::new(5.7), Volts::new(4.1))
            .unwrap();
        assert!((c.to_millifarads() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(required_capacitance(Coulombs::new(0.1), Volts::new(4.1), Volts::new(5.7))
            .is_err());
        assert!(required_capacitance(Coulombs::new(-0.1), Volts::new(5.7), Volts::new(4.1))
            .is_err());
    }

    #[test]
    fn table1_core_first_needs_less_buffer() {
        let platform = Platform::odroid_xu4();
        let (freq_first, core_first) = table1(&platform).unwrap();
        assert!(freq_first.required_capacitance > core_first.required_capacitance);
        assert!(freq_first.duration > core_first.duration);
        // The paper's chosen 47 mF part comfortably covers the
        // core-first requirement.
        assert!(core_first.required_capacitance.to_millifarads() < 47.0);
    }

    #[test]
    fn table1_magnitudes_are_plausible() {
        let platform = Platform::odroid_xu4();
        let (freq_first, core_first) = table1(&platform).unwrap();
        // δ: paper reports 345 ms vs 63 ms; we accept the same order.
        assert!(freq_first.duration.to_millis() > 150.0);
        assert!(core_first.duration.to_millis() < 150.0);
        // Q: paper reports 0.1299 C vs 0.0461 C.
        assert!(freq_first.charge.value() > 0.06);
        assert!(core_first.charge.value() < 0.12);
    }
}
