//! Control parameters of the power-neutral governor.
//!
//! Four parameters shape the controller:
//!
//! * `Vwidth` — initial separation of the two thresholds (Eq. 1),
//! * `Vq` — how far the thresholds move on every crossing, and the ΔV
//!   used in the slope estimate (Eq. 3),
//! * `α` — minimum |dVC/dt| to warrant a LITTLE-core change (Eq. 2),
//! * `β` — minimum |dVC/dt| to warrant a big-core change, `β > α`.
//!
//! The paper reports three operating points, all provided as presets:
//! the simulation demo of Fig. 6, the best values found by the §III
//! sweep (used for the PV experiments), and the deliberately large
//! values used for illustration in Fig. 11.

use crate::CoreError;
use pn_units::Volts;

/// Volts-per-second slope threshold.
pub type SlopeThreshold = f64;

/// The four control parameters of the governor.
///
/// # Examples
///
/// ```
/// use pn_core::params::ControlParams;
///
/// # fn main() -> Result<(), pn_core::CoreError> {
/// let p = ControlParams::paper_optimal()?;
/// assert!((p.v_width().to_millivolts() - 144.0).abs() < 1e-9);
/// assert!(p.beta() > p.alpha());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlParams {
    v_width: Volts,
    v_q: Volts,
    alpha: SlopeThreshold,
    beta: SlopeThreshold,
}

impl ControlParams {
    /// Creates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 < Vq ≤ Vwidth` and `0 < α < β`.
    pub fn new(
        v_width: Volts,
        v_q: Volts,
        alpha: SlopeThreshold,
        beta: SlopeThreshold,
    ) -> Result<Self, CoreError> {
        if !(v_width.value() > 0.0) || !v_width.is_finite() {
            return Err(CoreError::InvalidParameter("v_width must be positive"));
        }
        if !(v_q.value() > 0.0) || !v_q.is_finite() {
            return Err(CoreError::InvalidParameter("v_q must be positive"));
        }
        if v_q > v_width {
            return Err(CoreError::InvalidParameter("v_q must not exceed v_width"));
        }
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(CoreError::InvalidParameter("alpha must be positive"));
        }
        if !(beta > alpha) || !beta.is_finite() {
            return Err(CoreError::InvalidParameter("beta must exceed alpha"));
        }
        Ok(Self { v_width, v_q, alpha, beta })
    }

    /// The best-performing values from the paper's §III simulation
    /// sweep: `Vwidth` = 144 mV, `Vq` = 47.9 mV, `α` = 0.120 V/s,
    /// `β` = 0.479 V/s. These were used for the PV-array experiments.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn paper_optimal() -> Result<Self, CoreError> {
        Self::new(Volts::from_millivolts(144.0), Volts::from_millivolts(47.9), 0.120, 0.479)
    }

    /// The parameters of the paper's Fig. 6 simulation demo:
    /// `Vwidth` = 0.2 V, `Vq` = 80 mV, `α` = 0.1 V/s, `β` = 0.12 V/s.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn fig6_simulation() -> Result<Self, CoreError> {
        Self::new(Volts::from_millivolts(200.0), Volts::from_millivolts(80.0), 0.1, 0.12)
    }

    /// The deliberately large parameters of Fig. 11 ("chosen for
    /// clarity of illustration"): `Vwidth` = 335 mV, `Vq` = 190 mV,
    /// `α` = 0.238 V/s, `β` = 0.633 V/s.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn fig11_demo() -> Result<Self, CoreError> {
        Self::new(Volts::from_millivolts(335.0), Volts::from_millivolts(190.0), 0.238, 0.633)
    }

    /// Initial threshold separation `Vwidth`.
    pub fn v_width(&self) -> Volts {
        self.v_width
    }

    /// Threshold step / slope numerator `Vq`.
    pub fn v_q(&self) -> Volts {
        self.v_q
    }

    /// LITTLE-core slope threshold `α` in V/s.
    pub fn alpha(&self) -> SlopeThreshold {
        self.alpha
    }

    /// big-core slope threshold `β` in V/s.
    pub fn beta(&self) -> SlopeThreshold {
        self.beta
    }

    /// The crossing interval τ below which a big-core response fires:
    /// `τ_b = Vq/β` (from substituting Eq. 3 into Eq. 2).
    pub fn big_response_tau(&self) -> f64 {
        self.v_q.value() / self.beta
    }

    /// The crossing interval τ below which a LITTLE-core response
    /// fires: `τ_L = Vq/α`.
    pub fn little_response_tau(&self) -> f64 {
        self.v_q.value() / self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_match_the_paper() {
        let opt = ControlParams::paper_optimal().unwrap();
        assert!((opt.v_q().to_millivolts() - 47.9).abs() < 1e-9);
        assert!((opt.alpha() - 0.120).abs() < 1e-12);
        assert!((opt.beta() - 0.479).abs() < 1e-12);

        let fig6 = ControlParams::fig6_simulation().unwrap();
        assert!((fig6.v_width().value() - 0.2).abs() < 1e-12);

        let fig11 = ControlParams::fig11_demo().unwrap();
        assert!((fig11.v_q().to_millivolts() - 190.0).abs() < 1e-9);
    }

    #[test]
    fn response_taus_are_ordered() {
        // β > α ⇒ the big-core response requires a *faster* crossing.
        let p = ControlParams::paper_optimal().unwrap();
        assert!(p.big_response_tau() < p.little_response_tau());
        // Numerically: 47.9 mV / 0.479 V/s = 0.1 s.
        assert!((p.big_response_tau() - 0.1).abs() < 1e-9);
        // 47.9 mV / 0.120 V/s ≈ 0.399 s.
        assert!((p.little_response_tau() - 0.399).abs() < 0.001);
    }

    #[test]
    fn validation() {
        let v = Volts::from_millivolts;
        assert!(ControlParams::new(v(0.0), v(10.0), 0.1, 0.2).is_err());
        assert!(ControlParams::new(v(100.0), v(0.0), 0.1, 0.2).is_err());
        assert!(ControlParams::new(v(100.0), v(200.0), 0.1, 0.2).is_err(), "vq > vwidth");
        assert!(ControlParams::new(v(100.0), v(50.0), 0.0, 0.2).is_err());
        assert!(ControlParams::new(v(100.0), v(50.0), 0.3, 0.2).is_err(), "beta < alpha");
        assert!(ControlParams::new(v(100.0), v(50.0), 0.2, 0.2).is_err(), "beta == alpha");
    }

    proptest! {
        #[test]
        fn valid_domain_accepts(width_mv in 10.0f64..500.0, q_frac in 0.05f64..1.0,
                                alpha in 0.01f64..1.0, beta_mult in 1.01f64..10.0) {
            let p = ControlParams::new(
                Volts::from_millivolts(width_mv),
                Volts::from_millivolts(width_mv * q_frac),
                alpha,
                alpha * beta_mult,
            );
            prop_assert!(p.is_ok());
            let p = p.unwrap();
            prop_assert!(p.big_response_tau() < p.little_response_tau());
        }

        #[test]
        fn accessors_round_trip_the_inputs(width_mv in 10.0f64..500.0, q_frac in 0.05f64..1.0,
                                           alpha in 0.01f64..1.0, beta_mult in 1.01f64..10.0) {
            let p = ControlParams::new(
                Volts::from_millivolts(width_mv),
                Volts::from_millivolts(width_mv * q_frac),
                alpha,
                alpha * beta_mult,
            ).unwrap();
            prop_assert!((p.v_width().to_millivolts() - width_mv).abs() < 1e-9);
            prop_assert!((p.v_q().to_millivolts() - width_mv * q_frac).abs() < 1e-9);
            prop_assert!((p.alpha() - alpha).abs() < 1e-12);
            prop_assert!((p.beta() - alpha * beta_mult).abs() < 1e-12);
        }

        #[test]
        fn vq_above_vwidth_is_always_rejected(width_mv in 10.0f64..500.0,
                                              excess in 1.0001f64..5.0,
                                              alpha in 0.01f64..1.0) {
            let p = ControlParams::new(
                Volts::from_millivolts(width_mv),
                Volts::from_millivolts(width_mv * excess),
                alpha,
                alpha * 2.0,
            );
            prop_assert!(p.is_err());
        }

        #[test]
        fn beta_not_exceeding_alpha_is_always_rejected(width_mv in 10.0f64..500.0,
                                                       alpha in 0.01f64..1.0,
                                                       shrink in 0.0f64..=1.0) {
            // Any β ≤ α — including β = α exactly — must be rejected.
            let p = ControlParams::new(
                Volts::from_millivolts(width_mv),
                Volts::from_millivolts(width_mv * 0.5),
                alpha,
                alpha * shrink,
            );
            prop_assert!(p.is_err());
        }

        #[test]
        fn non_finite_and_non_positive_inputs_are_rejected(width_mv in 10.0f64..500.0,
                                                           alpha in 0.01f64..1.0,
                                                           bad in 0usize..6) {
            let v = Volts::from_millivolts;
            let (w, q, a, b) = match bad {
                0 => (0.0, width_mv * 0.5, alpha, alpha * 2.0),
                1 => (width_mv, 0.0, alpha, alpha * 2.0),
                2 => (width_mv, width_mv * 0.5, 0.0, alpha * 2.0),
                3 => (f64::NAN, width_mv * 0.5, alpha, alpha * 2.0),
                4 => (width_mv, width_mv * 0.5, f64::NAN, alpha * 2.0),
                _ => (width_mv, width_mv * 0.5, alpha, f64::INFINITY),
            };
            prop_assert!(ControlParams::new(v(w), v(q), a, b).is_err());
        }
    }
}
