//! Error type for governor construction and configuration.

use std::error::Error;
use std::fmt;

/// Errors raised by the power-neutral governor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A control parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// A platform description was unusable (e.g. empty frequency table).
    InvalidPlatform(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter(why) => write!(f, "invalid control parameter: {why}"),
            CoreError::InvalidPlatform(why) => write!(f, "invalid platform: {why}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::InvalidParameter("v_q must be positive")
            .to_string()
            .contains("v_q"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<CoreError>();
    }
}
