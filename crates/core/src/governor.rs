//! The power-neutral governor state machine (paper Fig. 5).
//!
//! On every threshold interrupt the governor performs, in order:
//!
//! 1. **DVFS response** — one step down (on `Vlow`) or up (on `Vhigh`)
//!    through the frequency ladder;
//! 2. **core hot-plug response** — Eqs. (2)–(3): compare the crossing
//!    interval τ against `Vq/β` (big) and `Vq/α` (LITTLE) and
//!    plug/unplug accordingly;
//! 3. **threshold update** — shift both thresholds by `Vq` in the
//!    crossing direction (clamped to the tracking window);
//! 4. restart the τ timer.
//!
//! Compound responses are ordered **core-first on power reductions**
//! (the paper's §IV-A shows this draws ~3× less charge, Table I) and
//! **frequency-first on power increases** (a DVFS step is the fastest
//! way to start exploiting a rising harvest).

use crate::events::{Governor, GovernorAction, GovernorEvent, ThresholdEdge};
use crate::params::ControlParams;
use crate::scaling::{scaling_from_crossing, CoreScaling, CrossingSign};
use crate::thresholds::ThresholdPair;
use crate::CoreError;
use pn_soc::cores::CoreType;
use pn_soc::freq::FrequencyTable;
use pn_soc::opp::Opp;
use pn_soc::platform::Platform;
use pn_soc::transition::TransitionStrategy;
use pn_units::{Seconds, Volts};

/// Statistics the governor keeps about its own activity (the basis of
/// the Fig. 15 overhead analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorStats {
    /// Number of `Vlow` interrupts handled.
    pub low_crossings: u64,
    /// Number of `Vhigh` interrupts handled.
    pub high_crossings: u64,
    /// DVFS steps commanded.
    pub dvfs_steps: u64,
    /// Core plug/unplug operations commanded.
    pub hotplug_ops: u64,
}

impl GovernorStats {
    /// Total threshold interrupts handled.
    pub fn total_crossings(&self) -> u64 {
        self.low_crossings + self.high_crossings
    }
}

/// The interrupt-driven power-neutral governor.
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct PowerNeutralGovernor {
    params: ControlParams,
    frequencies: FrequencyTable,
    thresholds: Option<ThresholdPair>,
    window_min: Volts,
    window_max: Volts,
    last_crossing: Option<Seconds>,
    stats: GovernorStats,
}

impl PowerNeutralGovernor {
    /// Creates a governor for `platform` with the given parameters.
    ///
    /// The threshold tracking window is the platform's operating
    /// window stretched slightly above the rated maximum (the PV
    /// open-circuit voltage bounds the excursion physically).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlatform`] if the platform's
    /// frequency table has fewer than two levels (no DVFS to perform).
    pub fn new(params: ControlParams, platform: &Platform) -> Result<Self, CoreError> {
        if platform.frequencies().len() < 2 {
            return Err(CoreError::InvalidPlatform("need at least two frequency levels"));
        }
        let window = platform.voltage_window();
        Ok(Self {
            params,
            frequencies: platform.frequencies().clone(),
            thresholds: None,
            window_min: window.min,
            window_max: window.max + Volts::new(0.2),
            last_crossing: None,
            stats: GovernorStats::default(),
        })
    }

    /// The active control parameters.
    pub fn params(&self) -> &ControlParams {
        &self.params
    }

    /// The current threshold pair, if the governor has started.
    pub fn thresholds(&self) -> Option<&ThresholdPair> {
        self.thresholds.as_ref()
    }

    /// Activity statistics.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    fn apply_core_scaling(opp: Opp, scaling: CoreScaling) -> Opp {
        let mut config = opp.config();
        if scaling.big > 0 {
            if let Some(next) = config.plugged(CoreType::Big) {
                config = next;
            }
        } else if scaling.big < 0 {
            if let Some(next) = config.unplugged(CoreType::Big) {
                config = next;
            }
        }
        if scaling.little > 0 {
            if let Some(next) = config.plugged(CoreType::Little) {
                config = next;
            }
        } else if scaling.little < 0 {
            if let Some(next) = config.unplugged(CoreType::Little) {
                config = next;
            }
        }
        opp.with_config(config)
    }

    fn handle_crossing(&mut self, edge: ThresholdEdge, t: Seconds, current: Opp) -> GovernorAction {
        let tau = match self.last_crossing {
            Some(prev) => (t - prev).max(Seconds::ZERO),
            // First crossing since start: treat as a slow drift so the
            // response is DVFS-only, matching the paper's conservative
            // start-up behaviour.
            None => Seconds::new(f64::INFINITY),
        };
        self.last_crossing = Some(t);

        // 1. DVFS response (Fig. 5, first box).
        let (new_level, sign) = match edge {
            ThresholdEdge::Low => {
                self.stats.low_crossings += 1;
                (self.frequencies.step_down(current.level()), CrossingSign::Falling)
            }
            ThresholdEdge::High => {
                self.stats.high_crossings += 1;
                (self.frequencies.step_up(current.level()), CrossingSign::Rising)
            }
        };
        if new_level != current.level() {
            self.stats.dvfs_steps += 1;
        }

        // 2. Core hot-plug response (Eqs. 2–3).
        let scaling = if tau.is_finite() {
            scaling_from_crossing(tau, sign, &self.params)
        } else {
            CoreScaling::NONE
        };
        let mut target = Self::apply_core_scaling(current.with_level(new_level), scaling);
        if target.config() != current.config() {
            let delta = i32::from(target.config().total()) - i32::from(current.config().total());
            self.stats.hotplug_ops += delta.unsigned_abs() as u64;
        }
        if target == current {
            target = current; // saturated at a ladder end; nothing to do
        }

        // 3. Threshold update (Fig. 5, last box).
        let thresholds = self.thresholds.as_mut().expect("on_event after start");
        match edge {
            ThresholdEdge::Low => thresholds.shift_down(self.params.v_q()),
            ThresholdEdge::High => thresholds.shift_up(self.params.v_q()),
        }
        let programmed = (thresholds.high(), thresholds.low());

        // Power reductions go core-first (Table I); increases go
        // frequency-first (cheapest way to start consuming more).
        let strategy = match edge {
            ThresholdEdge::Low => TransitionStrategy::CoreFirst,
            ThresholdEdge::High => TransitionStrategy::FrequencyFirst,
        };

        GovernorAction {
            target_opp: if target == current { None } else { Some(target) },
            strategy: Some(strategy),
            thresholds: Some(programmed),
            ..Default::default()
        }
    }
}

impl Governor for PowerNeutralGovernor {
    fn name(&self) -> &str {
        "power-neutral"
    }

    fn start(&mut self, t: Seconds, vc: Volts, current: Opp) -> GovernorAction {
        let pair = ThresholdPair::centered(
            vc,
            self.params.v_width(),
            self.window_min,
            self.window_max,
        )
        .expect("window validated at construction");
        self.thresholds = Some(pair);
        self.last_crossing = Some(t);
        GovernorAction {
            target_opp: Some(current),
            strategy: Some(TransitionStrategy::CoreFirst),
            thresholds: Some((pair.high(), pair.low())),
            ..Default::default()
        }
    }

    fn on_event(&mut self, event: &GovernorEvent, current: Opp) -> GovernorAction {
        match *event {
            GovernorEvent::ThresholdCrossed { edge, t, .. } => {
                self.handle_crossing(edge, t, current)
            }
            // The power-neutral governor is purely interrupt-driven.
            GovernorEvent::Tick { .. } => GovernorAction::none(),
        }
    }

    fn uses_threshold_interrupts(&self) -> bool {
        true
    }

    /// Interrupt-handler cost: read a GPIO, compute the response,
    /// queue the OPP change and rewrite two pot wipers over SPI. The
    /// paper measures the whole scheme at ≈0.104 % CPU (Fig. 15).
    fn handler_cost(&self) -> Seconds {
        Seconds::new(180e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pn_soc::cores::CoreConfig;

    fn governor() -> PowerNeutralGovernor {
        PowerNeutralGovernor::new(
            ControlParams::paper_optimal().unwrap(),
            &Platform::odroid_xu4(),
        )
        .unwrap()
    }

    fn cross(edge: ThresholdEdge, t: f64) -> GovernorEvent {
        GovernorEvent::ThresholdCrossed { edge, vc: Volts::new(5.3), t: Seconds::new(t) }
    }

    #[test]
    fn start_centres_thresholds_per_eq1() {
        let mut g = governor();
        let action = g.start(Seconds::ZERO, Volts::new(5.3), Opp::lowest());
        let (high, low) = action.thresholds.unwrap();
        assert!((high.value() - (5.3 + 0.144 / 2.0)).abs() < 1e-9);
        assert!((low.value() - (5.3 - 0.144 / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn first_crossing_is_dvfs_only() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(4, 2).unwrap(), 5);
        g.start(Seconds::ZERO, Volts::new(5.3), opp);
        // Even though this first crossing happens "instantly", τ is
        // measured from start (0.5 s) — slow — so no core change.
        let action = g.on_event(&cross(ThresholdEdge::Low, 0.5), opp);
        let target = action.target_opp.unwrap();
        assert_eq!(target.level(), 4);
        assert_eq!(target.config(), opp.config());
    }

    #[test]
    fn fast_fall_removes_big_and_little() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(4, 2).unwrap(), 5);
        g.start(Seconds::ZERO, Volts::new(5.3), opp);
        g.on_event(&cross(ThresholdEdge::Low, 1.0), opp);
        // Second crossing 50 ms later: τ = 0.05 < Vq/β = 0.1 s.
        let action = g.on_event(&cross(ThresholdEdge::Low, 1.05), opp.with_level(4));
        let target = action.target_opp.unwrap();
        assert_eq!(target.level(), 3);
        assert_eq!(target.config(), CoreConfig::new(3, 1).unwrap());
        assert_eq!(action.strategy, Some(TransitionStrategy::CoreFirst));
    }

    #[test]
    fn moderate_fall_removes_only_little() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(4, 2).unwrap(), 5);
        g.start(Seconds::ZERO, Volts::new(5.3), opp);
        g.on_event(&cross(ThresholdEdge::Low, 1.0), opp);
        // τ = 0.2 s: between Vq/β = 0.1 s and Vq/α ≈ 0.4 s.
        let action = g.on_event(&cross(ThresholdEdge::Low, 1.2), opp.with_level(4));
        let target = action.target_opp.unwrap();
        assert_eq!(target.config(), CoreConfig::new(3, 2).unwrap());
    }

    #[test]
    fn rising_mirror_adds_cores_frequency_first() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(2, 0).unwrap(), 2);
        g.start(Seconds::ZERO, Volts::new(5.0), opp);
        g.on_event(&cross(ThresholdEdge::High, 1.0), opp);
        let action = g.on_event(&cross(ThresholdEdge::High, 1.05), opp.with_level(3));
        let target = action.target_opp.unwrap();
        assert_eq!(target.level(), 4);
        assert_eq!(target.config(), CoreConfig::new(3, 1).unwrap());
        assert_eq!(action.strategy, Some(TransitionStrategy::FrequencyFirst));
    }

    #[test]
    fn saturation_at_the_bottom_yields_threshold_only_action() {
        let mut g = governor();
        let opp = Opp::lowest();
        g.start(Seconds::ZERO, Volts::new(4.3), opp);
        let action = g.on_event(&cross(ThresholdEdge::Low, 2.0), opp);
        // Nothing left to reduce, but the thresholds still track down.
        assert!(action.target_opp.is_none());
        assert!(action.thresholds.is_some());
    }

    #[test]
    fn thresholds_track_the_crossings() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(4, 0).unwrap(), 4);
        let start = g.start(Seconds::ZERO, Volts::new(5.3), opp);
        let (h0, _) = start.thresholds.unwrap();
        let a1 = g.on_event(&cross(ThresholdEdge::Low, 1.0), opp);
        let (h1, _) = a1.thresholds.unwrap();
        assert!((h0 - h1 - g.params().v_q()).abs() < Volts::new(1e-9));
    }

    #[test]
    fn stats_accumulate() {
        let mut g = governor();
        let opp = Opp::new(CoreConfig::new(4, 2).unwrap(), 5);
        g.start(Seconds::ZERO, Volts::new(5.3), opp);
        g.on_event(&cross(ThresholdEdge::Low, 1.0), opp);
        g.on_event(&cross(ThresholdEdge::Low, 1.05), opp);
        g.on_event(&cross(ThresholdEdge::High, 1.3), opp);
        let s = g.stats();
        assert_eq!(s.low_crossings, 2);
        assert_eq!(s.high_crossings, 1);
        assert_eq!(s.total_crossings(), 3);
        assert!(s.dvfs_steps >= 3);
        assert!(s.hotplug_ops >= 2);
    }

    #[test]
    fn tick_events_are_ignored() {
        let mut g = governor();
        let opp = Opp::lowest();
        g.start(Seconds::ZERO, Volts::new(5.0), opp);
        let action = g.on_event(
            &GovernorEvent::Tick { t: Seconds::new(1.0), vc: Volts::new(5.0), load: 1.0 },
            opp,
        );
        assert!(action.is_none());
    }

    #[test]
    fn requires_a_usable_frequency_table() {
        use pn_soc::freq::FrequencyTable;
        use pn_soc::latency::LatencyModel;
        use pn_soc::perf::PerfModel;
        use pn_soc::platform::VoltageWindow;
        use pn_soc::power::PowerModel;
        let single = Platform::new(
            "single-level",
            FrequencyTable::new(vec![pn_units::Hertz::from_gigahertz(1.0)]).unwrap(),
            PowerModel::odroid_xu4(),
            PerfModel::odroid_xu4(),
            LatencyModel::odroid_xu4(),
            VoltageWindow::odroid_xu4(),
            Volts::new(5.3),
        )
        .unwrap();
        assert!(matches!(
            PowerNeutralGovernor::new(ControlParams::paper_optimal().unwrap(), &single),
            Err(CoreError::InvalidPlatform(_))
        ));
    }
}
