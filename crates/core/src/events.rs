//! The governor interface shared by the power-neutral controller and
//! the baseline Linux governors.
//!
//! The co-simulation drives every governor through the same [`Governor`]
//! trait: interrupt-driven governors receive
//! [`GovernorEvent::ThresholdCrossed`] events from the (modelled)
//! monitoring hardware; sampling governors receive periodic
//! [`GovernorEvent::Tick`]s carrying the CPU load, exactly as Linux
//! cpufreq governors sample utilisation.

use pn_soc::opp::Opp;
use pn_soc::transition::TransitionStrategy;
use pn_units::{Seconds, Volts};

/// Which dynamic threshold was crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdEdge {
    /// `Vhigh` crossed from below — harvest is outrunning consumption.
    High,
    /// `Vlow` crossed from above — consumption is outrunning harvest.
    Low,
}

/// An input event delivered to a governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorEvent {
    /// The monitoring hardware raised a threshold interrupt.
    ThresholdCrossed {
        /// Which threshold fired.
        edge: ThresholdEdge,
        /// Supply voltage at the crossing.
        vc: Volts,
        /// Simulation time of the crossing.
        t: Seconds,
    },
    /// A periodic sampling tick (Linux-governor style).
    Tick {
        /// Simulation time of the tick.
        t: Seconds,
        /// Supply voltage at the tick.
        vc: Volts,
        /// CPU load in `[0, 1]` over the last sampling window.
        load: f64,
    },
}

/// A requested idle (DPM) move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdleRequest {
    /// Drop into the platform's idle state with this ladder index
    /// (0 = shallowest). Out-of-range indices clamp to the deepest
    /// state; ignored on platforms with no idle states.
    Enter(usize),
    /// Wake from the current idle state.
    Exit,
}

/// What a governor wants done in response to an event.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GovernorAction {
    /// Requested operating performance point, if any change is wanted.
    pub target_opp: Option<Opp>,
    /// Ordering for compound OPP changes.
    pub strategy: Option<TransitionStrategy>,
    /// New `(high, low)` thresholds to program into the monitor.
    pub thresholds: Option<(Volts, Volts)>,
    /// Requested idle-state move, if any.
    pub idle: Option<IdleRequest>,
}

impl GovernorAction {
    /// An action requesting nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the action requests no change at all.
    pub fn is_none(&self) -> bool {
        self.target_opp.is_none() && self.thresholds.is_none() && self.idle.is_none()
    }
}

/// A dynamic power-management policy.
///
/// Implementations must be deterministic: the same event sequence must
/// produce the same actions (all experiments in this workspace are
/// seeded and reproducible).
pub trait Governor {
    /// Human-readable policy name (e.g. `"power-neutral"`,
    /// `"ondemand"`).
    fn name(&self) -> &str;

    /// Called once when the system starts; returns the initial action
    /// (initial OPP and, for interrupt-driven governors, the initial
    /// thresholds per the paper's Eq. 1).
    fn start(&mut self, t: Seconds, vc: Volts, current: Opp) -> GovernorAction;

    /// Called for every event the governor subscribed to.
    fn on_event(&mut self, event: &GovernorEvent, current: Opp) -> GovernorAction;

    /// Sampling period for [`GovernorEvent::Tick`] delivery; `None`
    /// for purely interrupt-driven governors.
    fn tick_period(&self) -> Option<Seconds> {
        None
    }

    /// `true` when the governor wants threshold interrupts from the
    /// monitoring hardware.
    fn uses_threshold_interrupts(&self) -> bool {
        false
    }

    /// CPU time consumed by one event handler invocation, used for the
    /// Fig. 15 overhead accounting. The default matches a lightweight
    /// kernel-governor callback.
    fn handler_cost(&self) -> Seconds {
        Seconds::new(30e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;

    impl Governor for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn start(&mut self, _t: Seconds, _vc: Volts, _current: Opp) -> GovernorAction {
            GovernorAction::none()
        }
        fn on_event(&mut self, _event: &GovernorEvent, _current: Opp) -> GovernorAction {
            GovernorAction::none()
        }
    }

    #[test]
    fn default_action_is_none() {
        let a = GovernorAction::none();
        assert!(a.is_none());
        assert!(a.target_opp.is_none());
    }

    #[test]
    fn trait_defaults() {
        let g = Null;
        assert_eq!(g.tick_period(), None);
        assert!(!g.uses_threshold_interrupts());
        assert!(g.handler_cost().value() > 0.0);
    }

    #[test]
    fn governor_is_object_safe() {
        let mut g: Box<dyn Governor> = Box::new(Null);
        let action = g.start(Seconds::ZERO, Volts::new(5.0), Opp::lowest());
        assert!(action.is_none());
    }
}
