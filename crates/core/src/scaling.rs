//! Slope estimation and core-scaling factors (paper Eqs. 2–3).
//!
//! The derivative controller approximates the capacitor-voltage slope
//! only at crossings, where it is essentially free:
//!
//! ```text
//! dVC/dt ≈ ΔVC/Δτ = ±Vq/τ            (Eq. 3)
//! ```
//!
//! where τ is the time since the previous crossing (the thresholds move
//! by exactly `Vq` per crossing, so `Vq` *is* ΔVC). The ternary core
//! scaling factors are then (Eq. 2):
//!
//! ```text
//! Sb = +1 if dVC/dt > β, −1 if dVC/dt < −β, else 0
//! SL = +1 if dVC/dt > α, −1 if dVC/dt < −α, else 0
//! ```
//!
//! Because `β > α`, a *fast* excursion moves a big core (and, being
//! even faster than `α`, a LITTLE one too), while a moderate excursion
//! moves only a LITTLE core. A slow drift (τ > Vq/α) changes no cores
//! at all and is handled by DVFS alone.

use crate::params::ControlParams;
use pn_units::Seconds;

/// Sign of a threshold crossing for slope purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingSign {
    /// `Vhigh` was crossed: the supply is rising.
    Rising,
    /// `Vlow` was crossed: the supply is falling.
    Falling,
}

/// The ternary core-scaling factor pair `(Sb, SL)` of Eq. (2).
///
/// Values are −1 (remove a core), 0 (no change) or +1 (add a core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreScaling {
    /// `Sb` — big-core factor.
    pub big: i8,
    /// `SL` — LITTLE-core factor.
    pub little: i8,
}

impl CoreScaling {
    /// No core change.
    pub const NONE: CoreScaling = CoreScaling { big: 0, little: 0 };

    /// `true` when neither cluster changes.
    pub fn is_none(&self) -> bool {
        self.big == 0 && self.little == 0
    }
}

/// Estimates `dVC/dt` from a crossing interval per Eq. (3).
///
/// Returns the signed slope in V/s; the magnitude is `Vq/τ` and the
/// sign follows the crossing direction. A non-positive τ (the very
/// first crossing, or two crossings located at the same instant) is
/// treated as an infinitely fast excursion.
///
/// # Examples
///
/// ```
/// use pn_core::scaling::{estimate_slope, CrossingSign};
/// use pn_units::{Seconds, Volts};
///
/// let slope = estimate_slope(Volts::from_millivolts(47.9), Seconds::new(0.1),
///                            CrossingSign::Falling);
/// assert!((slope + 0.479).abs() < 1e-9);
/// ```
pub fn estimate_slope(v_q: pn_units::Volts, tau: Seconds, sign: CrossingSign) -> f64 {
    let magnitude = if tau.value() > 0.0 { v_q.value() / tau.value() } else { f64::INFINITY };
    match sign {
        CrossingSign::Rising => magnitude,
        CrossingSign::Falling => -magnitude,
    }
}

/// Computes the core-scaling factors of Eq. (2) from a signed slope.
///
/// # Examples
///
/// ```
/// use pn_core::params::ControlParams;
/// use pn_core::scaling::scaling_from_slope;
///
/// # fn main() -> Result<(), pn_core::CoreError> {
/// let p = ControlParams::paper_optimal()?;
/// // A violent collapse (−1 V/s) sheds a big AND a LITTLE core.
/// let s = scaling_from_slope(-1.0, &p);
/// assert_eq!((s.big, s.little), (-1, -1));
/// // A moderate fall (−0.2 V/s) sheds only a LITTLE core.
/// let s = scaling_from_slope(-0.2, &p);
/// assert_eq!((s.big, s.little), (0, -1));
/// # Ok(())
/// # }
/// ```
pub fn scaling_from_slope(dv_dt: f64, params: &ControlParams) -> CoreScaling {
    let big = if dv_dt > params.beta() {
        1
    } else if dv_dt < -params.beta() {
        -1
    } else {
        0
    };
    let little = if dv_dt > params.alpha() {
        1
    } else if dv_dt < -params.alpha() {
        -1
    } else {
        0
    };
    CoreScaling { big, little }
}

/// Convenience composition: scaling factors straight from a crossing
/// interval, as the governor computes them in its interrupt handler.
pub fn scaling_from_crossing(
    tau: Seconds,
    sign: CrossingSign,
    params: &ControlParams,
) -> CoreScaling {
    scaling_from_slope(estimate_slope(params.v_q(), tau, sign), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> ControlParams {
        ControlParams::paper_optimal().unwrap()
    }

    #[test]
    fn slow_drift_changes_no_cores() {
        // τ = 1 s ⇒ |slope| = 47.9 mV/s < α.
        let s = scaling_from_crossing(Seconds::new(1.0), CrossingSign::Falling, &params());
        assert!(s.is_none());
    }

    #[test]
    fn moderate_fall_sheds_a_little_core() {
        // τ = 0.2 s ⇒ |slope| ≈ 0.24 V/s: above α, below β.
        let s = scaling_from_crossing(Seconds::new(0.2), CrossingSign::Falling, &params());
        assert_eq!(s, CoreScaling { big: 0, little: -1 });
    }

    #[test]
    fn fast_fall_sheds_both() {
        // τ = 0.05 s ⇒ |slope| ≈ 0.958 V/s: above β (and hence α).
        let s = scaling_from_crossing(Seconds::new(0.05), CrossingSign::Falling, &params());
        assert_eq!(s, CoreScaling { big: -1, little: -1 });
    }

    #[test]
    fn rising_mirror_adds_cores() {
        let s = scaling_from_crossing(Seconds::new(0.05), CrossingSign::Rising, &params());
        assert_eq!(s, CoreScaling { big: 1, little: 1 });
        let s = scaling_from_crossing(Seconds::new(0.2), CrossingSign::Rising, &params());
        assert_eq!(s, CoreScaling { big: 0, little: 1 });
    }

    #[test]
    fn zero_tau_is_treated_as_infinite_slope() {
        let s = scaling_from_crossing(Seconds::ZERO, CrossingSign::Falling, &params());
        assert_eq!(s, CoreScaling { big: -1, little: -1 });
    }

    #[test]
    fn boundary_taus_match_params() {
        let p = params();
        // Just inside the big-response window.
        let s = scaling_from_crossing(
            Seconds::new(p.big_response_tau() * 0.99),
            CrossingSign::Falling,
            &p,
        );
        assert_eq!(s.big, -1);
        // Just outside it: only the LITTLE response fires.
        let s = scaling_from_crossing(
            Seconds::new(p.big_response_tau() * 1.01),
            CrossingSign::Falling,
            &p,
        );
        assert_eq!(s.big, 0);
        assert_eq!(s.little, -1);
    }

    proptest! {
        #[test]
        fn factors_are_consistent(tau_s in 1e-4f64..10.0, rising in proptest::bool::ANY) {
            let p = params();
            let sign = if rising { CrossingSign::Rising } else { CrossingSign::Falling };
            let s = scaling_from_crossing(Seconds::new(tau_s), sign, &p);
            // A big response implies a LITTLE response (β > α).
            if s.big != 0 {
                prop_assert_eq!(s.little, s.big);
            }
            // Signs must agree with the crossing direction.
            if rising {
                prop_assert!(s.big >= 0 && s.little >= 0);
            } else {
                prop_assert!(s.big <= 0 && s.little <= 0);
            }
        }

        #[test]
        fn slope_magnitude_matches_eq3(tau_s in 1e-3f64..10.0) {
            let p = params();
            let slope = estimate_slope(p.v_q(), Seconds::new(tau_s), CrossingSign::Rising);
            prop_assert!((slope - p.v_q().value() / tau_s).abs() < 1e-12);
        }
    }
}
