//! Regenerates Fig. 3: behaviour of an EH system under a transient
//! input, with and without power-neutral performance scaling.

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig03;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 3", "transient input with/without power-neutral scaling");
    let fig = fig03::run(Seconds::new(4.0), Seconds::new(16.0))?;
    println!(
        "{}",
        chart(
            &[&fig.vc_scaled, &fig.vc_static],
            &ChartOptions::new("VC under a sinusoidal harvest (V)").with_labels("V", "s")
        )
    );
    compare(
        "lifetime, small capacitor only (s)",
        "short",
        fig.static_lifetime.map_or("survived".into(), |s| format!("{s:.2}")),
    );
    compare(
        "lifetime, power-neutral scaling (s)",
        "perpetual",
        fig.scaled_lifetime.map_or("survived".into(), |s| format!("{s:.2}")),
    );
    Ok(())
}
