//! Regenerates Fig. 12: VC over the six-hour full-sun PV test and the
//! ±5 % residency headline (paper: 93.3 %).

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 12", "VC stability over the six-hour full-sun test");
    let fig = fig12::run(7)?;
    println!(
        "{}",
        chart(
            &[&fig.vc],
            &ChartOptions::new(format!(
                "VC over the test window (target {:.1} V ± 5 %)",
                fig.target_v
            ))
            .with_labels("V", "s since midnight")
        )
    );
    compare("survived the full window", "yes", fig.survived);
    compare(
        "time within ±5 % of target",
        "93.3 %",
        format!("{:.1} %", fig.within_5pct * 100.0),
    );
    Ok(())
}
