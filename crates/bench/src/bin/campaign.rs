//! Campaign runner: simulate a (weather × seed × buffer × governor)
//! scenario matrix in parallel and print the aggregated verdicts.
//!
//! Supports sharded runs (disjoint chunks of the matrix for separate
//! machines), persisted reports that merge bitwise back into the
//! unsharded report, shard-aware resume of interrupted runs, adaptive
//! brown-out boundary refinement, and CSV export:
//!
//! ```sh
//! cargo run --release -p pn-bench --bin campaign              # 24-cell diverse matrix
//! cargo run --release -p pn-bench --bin campaign -- --smoke   # tiny 2×2 CI matrix
//! cargo run --release -p pn-bench --bin campaign -- --threads 4 --seeds 3
//! cargo run --release -p pn-bench --bin campaign -- --out report.csv
//!
//! # run shard 2 of 4 and persist its partial report…
//! cargo run --release -p pn-bench --bin campaign -- --shard 2/4 --save shard2.pnc
//! # …then recompose all four partial reports into the full one:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --merge shard1.pnc shard2.pnc shard3.pnc shard4.pnc --out report.csv
//!
//! # resume an interrupted run: skip the cells a saved partial report
//! # already carries, simulate only the rest, merge bitwise:
//! cargo run --release -p pn-bench --bin campaign -- --resume shard2.pnc --out report.csv
//!
//! # bisect each (weather, governor) group's buffer capacitance to the
//! # brown-out boundary, steering every round from the previous one:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --smoke --adapt --tolerance 8 --max-rounds 16 --summary-out summary.csv
//!
//! # run the whole matrix on the interpolated supply fast path
//! # (--tolerance, in amps, sharpens the surface when given):
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --supply-model interp --tolerance 0.0005 --out report.csv
//!
//! # force the scalar (one-cell-at-a-time) engine — the oracle the
//! # default batched lane engine is bitwise-checked against:
//! cargo run --release -p pn-bench --bin campaign -- --engine scalar --out report.csv
//!
//! # swap the governor axis (any GovernorSpec slug, comma-separated) —
//! # e.g. the two DPM policies against the power-neutral controller:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --governors power-neutral,race-to-idle,budget-shift
//! # …and re-run with the idle-state ladder masked off, to measure
//! # what the DPM axis itself buys:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --governors race-to-idle --idle off
//!
//! # turn on the adversarial stress axes — lumped-RC thermal
//! # throttle/boost, bursty workload arrival, harvester fault storms:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --thermal --arrivals bursty --faults brownout --out report.csv
//! # …and bisect the thermal throttle ceiling (instead of the buffer)
//! # to each group's survival boundary:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --smoke --thermal --adapt --adapt-axis thermal
//!
//! # client mode against a running campaignd (same spec flags): submit
//! # the matrix as 6 shards and stream rows until it completes…
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --smoke --submit 127.0.0.1:7070 --shards 6 --out report.csv
//! # …submit without waiting, then watch from any number of clients:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --smoke --submit 127.0.0.1:7070 --detach
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --watch 127.0.0.1:7070 --job 1 --out report.csv
//!
//! # harden the client against a flaky daemon or network: up to 16
//! # connection attempts with seeded exponential backoff, the watch
//! # resuming mid-stream (`watch <id> from <row>`) after every drop;
//! # --from skips rows an earlier connection already delivered:
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --watch 127.0.0.1:7070 --job 1 --retry 16 --out report.csv
//! cargo run --release -p pn-bench --bin campaign -- \
//!     --watch 127.0.0.1:7070 --job 1 --from 12
//! ```

use pn_bench::{banner, print_table};
use pn_harvest::faults::FaultSpec;
use pn_sim::adaptive::{AdaptiveAxis, AdaptiveCampaign, AdaptiveConfig};
use pn_sim::campaign::{
    resume_campaign_parts, run_campaign, CampaignReport, CampaignSpec, GovernorSpec,
};
use pn_sim::daemon;
use pn_sim::engine::EngineKind;
use pn_sim::executor::Executor;
use pn_sim::persist;
use pn_sim::supply::SupplyModel;
use pn_harvest::cache::TraceCache;
use pn_soc::thermal::ThermalSpec;
use pn_workload::arrival::ArrivalSpec;

struct Cli {
    smoke: bool,
    threads: usize, // 0 → default parallelism
    seeds: Option<u64>,
    shard: Option<(usize, usize)>, // 1-based (index, count)
    save: Option<String>,
    out: Option<String>,
    summary_out: Option<String>,
    merge: Vec<String>,
    resume: Vec<String>,
    adapt: bool,
    tolerance: Option<f64>,
    max_rounds: Option<usize>,
    supply_model: Option<SupplyModel>,
    engine: Option<EngineKind>,
    governors: Option<Vec<GovernorSpec>>,
    idle: Option<bool>,
    thermal: bool,
    arrivals: Option<Vec<ArrivalSpec>>,
    faults: Option<Vec<FaultSpec>>,
    adapt_axis: Option<AdaptiveAxis>,
    submit: Option<String>, // daemon address: submit the spec there
    watch: Option<String>,  // daemon address: stream an existing job
    job: Option<u64>,       // job id for --watch
    shards: Option<usize>,  // daemon-side shard count for --submit
    detach: bool,           // --submit without waiting for completion
    retry: Option<u32>,     // client connection attempts (default 1)
    from: Option<usize>,    // --watch resume offset into the row stream
}

fn parse_shard(arg: &str) -> Result<(usize, usize), String> {
    let bad = || format!("--shard wants I/N (e.g. 2/4), got {arg:?}");
    let (i, n) = arg.split_once('/').ok_or_else(bad)?;
    let (i, n): (usize, usize) =
        (i.parse().map_err(|_| bad())?, n.parse().map_err(|_| bad())?);
    if i == 0 || n == 0 || i > n {
        return Err(format!("--shard index out of range: {i}/{n}"));
    }
    Ok((i, n))
}

fn parse_cli() -> Result<Cli, String> {
    // Parse every flag first, then assemble the spec, so flag order
    // cannot silently change the campaign (`--seeds 3 --smoke` and
    // `--smoke --seeds 3` must mean the same thing).
    let mut cli = Cli {
        smoke: false,
        threads: 0,
        seeds: None,
        shard: None,
        save: None,
        out: None,
        summary_out: None,
        merge: Vec::new(),
        resume: Vec::new(),
        adapt: false,
        tolerance: None,
        max_rounds: None,
        supply_model: None,
        engine: None,
        governors: None,
        idle: None,
        thermal: false,
        arrivals: None,
        faults: None,
        adapt_axis: None,
        submit: None,
        watch: None,
        job: None,
        shards: None,
        detach: false,
        retry: None,
        from: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    let value = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                 flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cli.smoke = true,
            "--threads" => {
                cli.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seeds" => {
                cli.seeds = Some(
                    value(&mut args, "--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
                );
            }
            "--shard" => cli.shard = Some(parse_shard(&value(&mut args, "--shard")?)?),
            "--save" => cli.save = Some(value(&mut args, "--save")?),
            "--out" => cli.out = Some(value(&mut args, "--out")?),
            "--summary-out" => cli.summary_out = Some(value(&mut args, "--summary-out")?),
            "--resume" => {
                // Greedy like --merge: any number of saved partial
                // reports (e.g. the shard checkpoints a killed daemon
                // left behind), gaps simulated, merge bitwise.
                while let Some(path) = args.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    cli.resume.push(args.next().expect("peeked"));
                }
                if cli.resume.is_empty() {
                    return Err("--resume needs at least one report file".into());
                }
            }
            "--adapt" => cli.adapt = true,
            "--submit" => cli.submit = Some(value(&mut args, "--submit")?),
            "--watch" => cli.watch = Some(value(&mut args, "--watch")?),
            "--job" => {
                cli.job =
                    Some(value(&mut args, "--job")?.parse().map_err(|e| format!("--job: {e}"))?);
            }
            "--shards" => {
                cli.shards = Some(
                    value(&mut args, "--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
            }
            "--detach" => cli.detach = true,
            "--retry" => {
                cli.retry = Some(
                    value(&mut args, "--retry")?
                        .parse()
                        .map_err(|e| format!("--retry: {e}"))?,
                );
            }
            "--from" => {
                cli.from = Some(
                    value(&mut args, "--from")?.parse().map_err(|e| format!("--from: {e}"))?,
                );
            }
            "--supply-model" => {
                let slug = value(&mut args, "--supply-model")?;
                cli.supply_model = Some(SupplyModel::from_slug(&slug).ok_or_else(|| {
                    format!(
                        "--supply-model wants exact, interp or interp:<tol-amps>, got {slug:?}"
                    )
                })?);
            }
            "--governors" => {
                let list = value(&mut args, "--governors")?;
                let governors: Vec<GovernorSpec> = list
                    .split(',')
                    .map(|slug| {
                        GovernorSpec::from_slug(slug.trim()).ok_or_else(|| {
                            format!("--governors: unknown governor slug {:?}", slug.trim())
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if governors.is_empty() {
                    return Err("--governors needs at least one slug".into());
                }
                cli.governors = Some(governors);
            }
            "--idle" => {
                cli.idle = Some(match value(&mut args, "--idle")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--idle wants on or off, got {other:?}")),
                });
            }
            "--thermal" => cli.thermal = true,
            "--arrivals" => {
                let list = value(&mut args, "--arrivals")?;
                let arrivals: Vec<ArrivalSpec> = list
                    .split(',')
                    .map(|slug| {
                        let slug = slug.trim();
                        if slug == "bursty" {
                            return Ok(ArrivalSpec::bursty_stress());
                        }
                        ArrivalSpec::from_slug(slug).ok_or_else(|| {
                            format!("--arrivals: unknown arrival slug {slug:?}")
                        })
                    })
                    .collect::<Result<_, _>>()?;
                cli.arrivals = Some(arrivals);
            }
            "--faults" => {
                let list = value(&mut args, "--faults")?;
                let faults: Vec<FaultSpec> = list
                    .split(',')
                    .map(|slug| {
                        let slug = slug.trim();
                        match slug {
                            "shading" => Ok(FaultSpec::shading_stress()),
                            "brownout" => Ok(FaultSpec::brownout_stress()),
                            _ => FaultSpec::from_slug(slug).ok_or_else(|| {
                                format!("--faults: unknown fault slug {slug:?}")
                            }),
                        }
                    })
                    .collect::<Result<_, _>>()?;
                cli.faults = Some(faults);
            }
            "--adapt-axis" => {
                let slug = value(&mut args, "--adapt-axis")?;
                cli.adapt_axis = Some(AdaptiveAxis::from_slug(&slug).ok_or_else(|| {
                    format!("--adapt-axis wants buffer, thermal or fault, got {slug:?}")
                })?);
            }
            "--engine" => {
                let slug = value(&mut args, "--engine")?;
                cli.engine = Some(EngineKind::from_slug(&slug).ok_or_else(|| {
                    format!("--engine wants scalar or batched, got {slug:?}")
                })?);
            }
            "--tolerance" => {
                cli.tolerance = Some(
                    value(&mut args, "--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?,
                );
            }
            "--max-rounds" => {
                cli.max_rounds = Some(
                    value(&mut args, "--max-rounds")?
                        .parse()
                        .map_err(|e| format!("--max-rounds: {e}"))?,
                );
            }
            "--merge" => {
                while let Some(path) = args.peek() {
                    if path.starts_with("--") {
                        break;
                    }
                    cli.merge.push(args.next().expect("peeked"));
                }
                if cli.merge.is_empty() {
                    return Err("--merge needs at least one report file".into());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !cli.merge.is_empty()
        && (cli.shard.is_some()
            || cli.smoke
            || cli.seeds.is_some()
            || cli.threads != 0
            || !cli.resume.is_empty()
            || cli.adapt
            || cli.supply_model.is_some()
            || cli.engine.is_some()
            || cli.governors.is_some()
            || cli.idle.is_some()
            || cli.thermal
            || cli.arrivals.is_some()
            || cli.faults.is_some())
    {
        return Err(
            "--merge recomposes saved reports without simulating; it cannot be combined \
             with --shard, --smoke, --seeds, --threads, --resume, --adapt, --supply-model, \
             --engine, --governors, --idle, --thermal, --arrivals or --faults"
                .into(),
        );
    }
    if !cli.resume.is_empty() && cli.shard.is_some() {
        return Err("--resume completes saved partial reports; it cannot be combined \
                    with --shard (the saved reports already pin the missing cells)"
            .into());
    }
    if cli.submit.is_some() && cli.watch.is_some() {
        return Err("--submit and --watch are separate client modes; use one".into());
    }
    let client = cli.submit.is_some() || cli.watch.is_some();
    if client
        && (cli.shard.is_some()
            || cli.save.is_some()
            || cli.summary_out.is_some()
            || !cli.merge.is_empty()
            || !cli.resume.is_empty()
            || cli.adapt
            || cli.threads != 0)
    {
        return Err("--submit/--watch talk to a campaign daemon; they cannot be combined \
                    with --shard, --save, --summary-out, --merge, --resume, --adapt or \
                    --threads (the daemon owns scheduling and persistence)"
            .into());
    }
    if cli.job.is_some() && cli.watch.is_none() {
        return Err("--job only applies to --watch".into());
    }
    if cli.watch.is_some() && cli.job.is_none() {
        return Err("--watch needs --job <id>".into());
    }
    if cli.shards.is_some() && cli.submit.is_none() {
        return Err("--shards only applies to --submit".into());
    }
    if cli.detach && cli.submit.is_none() {
        return Err("--detach only applies to --submit".into());
    }
    if cli.detach && cli.out.is_some() {
        return Err("--detach does not wait for rows; it cannot write --out".into());
    }
    if cli.retry.is_some() && !client {
        return Err("--retry only applies to the client modes (--submit/--watch)".into());
    }
    if cli.retry == Some(0) {
        return Err("--retry wants at least 1 attempt".into());
    }
    if cli.from.is_some() && cli.watch.is_none() {
        return Err("--from only applies to --watch (resume offset into the row stream)".into());
    }
    if cli.from.is_some_and(|from| from > 0) && cli.out.is_some() {
        return Err("--from resumes mid-stream, so the rows cannot assemble a complete \
                    CSV; drop --out or watch from 0"
            .into());
    }
    if cli.watch.is_some()
        && (cli.smoke
            || cli.seeds.is_some()
            || cli.supply_model.is_some()
            || cli.engine.is_some()
            || cli.governors.is_some()
            || cli.idle.is_some()
            || cli.thermal
            || cli.arrivals.is_some()
            || cli.faults.is_some())
    {
        return Err("--watch streams a job already submitted; the spec flags (--smoke, \
                    --seeds, --supply-model, --engine, --governors, --idle, --thermal, \
                    --arrivals, --faults) only apply to --submit or local runs"
            .into());
    }
    if cli.adapt && cli.shard.is_some() {
        return Err("--adapt needs the full matrix report; run the shards, --merge them, \
                    or --resume the saved partial report first"
            .into());
    }
    if cli.max_rounds.is_some() && !cli.adapt {
        return Err("--max-rounds only applies to --adapt".into());
    }
    if cli.adapt_axis.is_some() && !cli.adapt {
        return Err("--adapt-axis only applies to --adapt".into());
    }
    let interp = matches!(cli.supply_model, Some(SupplyModel::Interpolated { .. }));
    if cli.tolerance.is_some() && !cli.adapt && !interp {
        return Err("--tolerance applies to --adapt (millifarads) or to \
                    --supply-model interp (amps)"
            .into());
    }
    // `--tolerance` reuse: without --adapt it sharpens the surface
    // tolerance of `--supply-model interp` (with --adapt it keeps its
    // bracket-width meaning and the interp tolerance stays as given).
    if let (false, Some(tol), Some(SupplyModel::Interpolated { .. })) =
        (cli.adapt, cli.tolerance, cli.supply_model)
    {
        if !(tol > 0.0) || !tol.is_finite() {
            return Err(format!("--tolerance wants a positive surface tolerance, got {tol}"));
        }
        cli.supply_model = Some(SupplyModel::Interpolated { tol });
    }
    Ok(cli)
}

/// Assembles the campaign spec from the CLI's spec flags — shared by
/// the local run path and the `--submit` client mode, so a submitted
/// matrix is exactly the matrix the same flags would run locally.
fn build_spec(cli: &Cli) -> CampaignSpec {
    let mut spec = if cli.smoke { CampaignSpec::smoke() } else { CampaignSpec::diverse() };
    if let Some(n) = cli.seeds {
        spec.seeds = (1..=n.max(1)).collect();
    }
    if let Some(model) = cli.supply_model {
        spec = spec.with_supply_model(model);
    }
    if let Some(engine) = cli.engine {
        spec = spec.with_engine(engine);
    }
    if let Some(governors) = &cli.governors {
        spec = spec.with_governors(governors.clone());
    }
    if let Some(idle) = cli.idle {
        spec = spec.with_idle(idle);
    }
    if cli.thermal {
        spec = spec.with_thermals(vec![ThermalSpec::stress()]);
    }
    if let Some(arrivals) = &cli.arrivals {
        spec = spec.with_arrivals(arrivals.clone());
    }
    if let Some(faults) = &cli.faults {
        spec = spec.with_faults(faults.clone());
    }
    spec
}

fn print_spec_settings(cli: &Cli) {
    if let Some(model) = cli.supply_model {
        println!("  supply model: {model}");
    }
    if let Some(engine) = cli.engine {
        println!("  engine: {engine}");
    }
    if let Some(governors) = &cli.governors {
        let labels: Vec<String> = governors.iter().map(GovernorSpec::label).collect();
        println!("  governors: {}", labels.join(", "));
    }
    if let Some(idle) = cli.idle {
        println!("  idle states: {}", if idle { "on" } else { "off" });
    }
    if cli.thermal {
        println!("  thermal: {}", ThermalSpec::stress().slug());
    }
    if let Some(arrivals) = &cli.arrivals {
        let slugs: Vec<String> = arrivals.iter().map(ArrivalSpec::slug).collect();
        println!("  arrivals: {}", slugs.join(", "));
    }
    if let Some(faults) = &cli.faults {
        let slugs: Vec<String> = faults.iter().map(FaultSpec::slug).collect();
        println!("  faults: {}", slugs.join(", "));
    }
}

/// Client mode: submit the spec to a campaign daemon and/or stream a
/// job's rows as they complete. The assembled CSV is byte-identical to
/// the one a local `--out` run of the same spec writes.
fn run_client(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    // One attempt by default; `--retry n` arms reconnects with seeded
    // exponential backoff, and a dropped watch resumes mid-stream.
    let policy = daemon::RetryPolicy::no_retry().with_attempts(cli.retry.unwrap_or(1));
    let (addr, job) = if let Some(addr) = &cli.watch {
        (addr.clone(), cli.job.expect("validated by parse_cli"))
    } else {
        let addr = cli.submit.clone().expect("client mode");
        print_spec_settings(cli);
        let spec = build_spec(cli);
        let ticket = daemon::submit_with(&addr, &spec, cli.shards.unwrap_or(0), &policy)?;
        banner(
            "campaign",
            &format!(
                "submitted job {} ({} cells over {} shards) to {addr}",
                ticket.id, ticket.cells, ticket.shards
            ),
        );
        if cli.detach {
            println!("  stream it with: campaign --watch {addr} --job {}", ticket.id);
            return Ok(());
        }
        (addr, ticket.id)
    };
    let from = cli.from.unwrap_or(0);
    if from == 0 {
        println!("  streaming job {job} from {addr}:");
    } else {
        println!("  streaming job {job} from {addr} (resuming at stream row {from}):");
    }
    let mut rows: Vec<(usize, String)> = Vec::new();
    let cells = daemon::watch_rows_with(&addr, job, from, &policy, &mut |index, row| {
        println!("  row {index:>4}  {row}");
        rows.push((index, row.to_string()));
    })?;
    println!();
    println!("  job {job} complete: {cells} cells");
    if let Some(path) = &cli.out {
        let csv = daemon::rows_to_csv(cells, rows)?;
        persist::write_atomic(path, &csv)?;
        println!("  wrote campaign CSV ({cells} rows) to {path}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = parse_cli()?;
    if cli.submit.is_some() || cli.watch.is_some() {
        return run_client(&cli);
    }
    let executor = Executor::new(cli.threads);

    let (report, ran) = if cli.merge.is_empty() {
        print_spec_settings(&cli);
        let spec = build_spec(&cli);
        let t0 = std::time::Instant::now();
        let report = if !cli.resume.is_empty() {
            let mut parts = Vec::with_capacity(cli.resume.len());
            for path in &cli.resume {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                parts
                    .push(persist::report_from_str(&text).map_err(|e| format!("{path}: {e}"))?);
            }
            let saved_cells: usize = parts.iter().map(CampaignReport::len).sum();
            banner(
                "campaign",
                &format!(
                    "resuming {} of {} cells ({} saved report(s) carry {}) on {} worker threads",
                    // Saturate: saved reports larger than the matrix are
                    // rejected by resume_campaign_parts just below.
                    spec.cell_count().saturating_sub(saved_cells),
                    spec.cell_count(),
                    parts.len(),
                    saved_cells,
                    executor.threads()
                ),
            );
            let cache = TraceCache::new();
            resume_campaign_parts(&spec, &parts, &executor, Some(&cache))?
        } else {
            let shard = cli.shard.map(|(i, n)| spec.shard(n).swap_remove(i - 1));
            let what = match &shard {
                Some(s) => {
                    format!("shard {}/{} ({} cells)", s.index() + 1, s.count(), s.cells().len())
                }
                None => format!("{} scenario cells", spec.cell_count()),
            };
            banner("campaign", &format!("{what} on {} worker threads", executor.threads()));
            match &shard {
                Some(s) => s.run(&executor)?,
                None => run_campaign(&spec, &executor)?,
            }
        };
        (report, Some(t0.elapsed()))
    } else {
        banner("campaign", &format!("merging {} saved shard reports", cli.merge.len()));
        let mut parts = Vec::with_capacity(cli.merge.len());
        for path in &cli.merge {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            parts.push(persist::report_from_str(&text).map_err(|e| format!("{path}: {e}"))?);
        }
        (CampaignReport::merge(parts)?, None)
    };

    let rows: Vec<Vec<String>> = report
        .cells()
        .iter()
        .map(|c| {
            vec![
                c.cell.label(),
                if c.survived { "yes".into() } else { "NO".into() },
                format!("{:.1}", c.lifetime_seconds),
                format!("{:.3}", c.vc_stability),
                format!("{:.2}", c.instructions_billions),
                format!("{:.1}", c.energy_in_joules),
                format!("{:.1}", c.energy_out_joules),
                format!("{}", c.transitions),
            ]
        })
        .collect();
    print_table(
        &["cell", "alive", "life (s)", "VC ±5%", "instr (G)", "E_in (J)", "E_out (J)", "trans"],
        &rows,
    );

    println!();
    println!(
        "  {} cells, {} brownouts, survival rate {:.0} %, {:.1} G instructions total",
        report.len(),
        report.brownout_count(),
        report.survival_rate() * 100.0,
        report.total_instructions_billions()
    );

    let group_rows = |groups: &[pn_sim::campaign::GroupSummary]| -> Vec<Vec<String>> {
        groups
            .iter()
            .map(|g| {
                vec![
                    g.label.clone(),
                    format!("{}", g.cells),
                    format!("{}", g.brownouts),
                    format!("{:.3}", g.vc_stability.mean().unwrap_or(0.0)),
                    format!("{:.2}", g.instructions_billions.sum()),
                    format!("{:.2}", g.energy_utilisation.mean().unwrap_or(0.0)),
                ]
            })
            .collect()
    };

    println!();
    println!("  by weather:");
    print_table(
        &["weather", "cells", "brownouts", "mean VC ±5%", "instr (G)", "E_out/E_in"],
        &group_rows(&report.by_weather()),
    );
    println!();
    println!("  by governor:");
    print_table(
        &["governor", "cells", "brownouts", "mean VC ±5%", "instr (G)", "E_out/E_in"],
        &group_rows(&report.by_governor()),
    );

    // The adaptive refinement loop: bisect each (weather, governor)
    // group along the chosen axis — buffer capacitance (default),
    // thermal throttle ceiling or harvester fault depth — to the
    // brown-out boundary, emitting every round as an ordinary campaign
    // on the same executor.
    let summary_source = if cli.adapt {
        let axis = cli.adapt_axis.unwrap_or_default();
        let defaults = AdaptiveConfig::for_axis(axis);
        let config = AdaptiveConfig {
            tolerance_mf: cli.tolerance.unwrap_or(defaults.tolerance_mf),
            max_rounds: cli.max_rounds.unwrap_or(defaults.max_rounds),
            ..defaults
        };
        let mut adaptive = AdaptiveCampaign::from_report(&report, config)?;
        let cache = TraceCache::new();
        let t0 = std::time::Instant::now();
        let brackets = adaptive.run(&executor, Some(&cache))?;
        // Survival is monotone *up* in buffer capacitance but *down*
        // in throttle ceiling and fault depth, so the bracket ends
        // swap meaning on the inverted axes.
        let (unit, decimals, lo_label, hi_label) = match axis {
            AdaptiveAxis::BufferMf => ("mF", 1, "browns out ≤", "survives ≥"),
            AdaptiveAxis::ThermalLimitC => ("°C", 1, "survives ≤", "browns out ≥"),
            AdaptiveAxis::FaultDepth => ("depth", 3, "survives ≤", "browns out ≥"),
        };
        let fmt_val = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.decimals$}"));
        let bracket_rows: Vec<Vec<String>> = brackets
            .iter()
            .map(|b| {
                vec![
                    format!("{}", b.weather),
                    b.governor.label(),
                    fmt_val(b.lo_mf),
                    fmt_val(b.hi_mf),
                    fmt_val(b.width_mf()),
                    fmt_val(b.boundary_estimate_mf()),
                    b.status.to_string(),
                    format!("{}", b.probes),
                ]
            })
            .collect();
        println!();
        println!(
            "  {axis} boundary brackets (tolerance {} {unit}, {} rounds, {} probe cells, {:.2} s):",
            config.tolerance_mf,
            adaptive.rounds(),
            adaptive.history().len() - report.len(),
            t0.elapsed().as_secs_f64()
        );
        let lo_header = format!("{lo_label} ({unit})");
        let hi_header = format!("{hi_label} ({unit})");
        print_table(
            &[
                "weather",
                "governor",
                &lo_header,
                &hi_header,
                "width",
                "estimate",
                "status",
                "probes",
            ],
            &bracket_rows,
        );
        Some(adaptive.probe_report())
    } else {
        None
    };

    // Artifact writes are atomic (temp file + rename): a killed writer
    // can never leave the torn final line resume rightly rejects.
    if let Some(path) = &cli.save {
        persist::write_atomic(path, &persist::report_to_string(&report))?;
        println!();
        println!("  saved report ({} cells, offset {}) to {path}", report.len(), report.start());
    }
    if let Some(path) = &cli.out {
        persist::write_atomic(path, &persist::report_csv_string(&report)?)?;
        println!();
        println!("  wrote campaign CSV ({} rows) to {path}", report.len());
    }
    if let Some(path) = &cli.summary_out {
        // With --adapt the summary covers every probed cell, so the
        // boundary search is part of the exported statistics.
        let summarised = summary_source.as_ref().unwrap_or(&report);
        persist::write_atomic(path, &persist::report_summary_csv_string(summarised)?)?;
        println!();
        println!(
            "  wrote summary CSV ({} groups over {} cells) to {path}",
            persist::summary_rows(summarised).len(),
            summarised.len()
        );
    }

    if let Some(wall) = ran {
        println!();
        println!(
            "  simulated {:.0} scenario-seconds in {:.2} s of wall time",
            report.cells().iter().map(|c| c.cell.duration.value()).sum::<f64>(),
            wall.as_secs_f64()
        );
    }
    Ok(())
}
