//! Campaign runner: simulate a (weather × seed × buffer × governor)
//! scenario matrix in parallel and print the aggregated verdicts.
//!
//! ```sh
//! cargo run --release -p pn-bench --bin campaign              # 24-cell diverse matrix
//! cargo run --release -p pn-bench --bin campaign -- --smoke   # tiny 2×2 CI matrix
//! cargo run --release -p pn-bench --bin campaign -- --threads 4 --seeds 3
//! ```

use pn_bench::{banner, print_table};
use pn_sim::campaign::{run_campaign, CampaignSpec};
use pn_sim::executor::Executor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse every flag first, then assemble the spec, so flag order
    // cannot silently change the campaign (`--seeds 3 --smoke` and
    // `--smoke --seeds 3` must mean the same thing).
    let mut smoke = false;
    let mut threads = 0usize; // 0 → default parallelism
    let mut seeds: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--threads" => {
                threads = args.next().ok_or("--threads needs a value")?.parse()?;
            }
            "--seeds" => {
                seeds = Some(args.next().ok_or("--seeds needs a value")?.parse()?);
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    let mut spec = if smoke { CampaignSpec::smoke() } else { CampaignSpec::diverse() };
    if let Some(n) = seeds {
        spec.seeds = (1..=n.max(1)).collect();
    }

    let executor = Executor::new(threads);
    banner(
        "campaign",
        &format!(
            "{} scenario cells on {} worker threads",
            spec.cell_count(),
            executor.threads()
        ),
    );

    let t0 = std::time::Instant::now();
    let report = run_campaign(&spec, &executor)?;
    let wall = t0.elapsed();

    let rows: Vec<Vec<String>> = report
        .cells()
        .iter()
        .map(|c| {
            vec![
                c.cell.label(),
                if c.survived { "yes".into() } else { "NO".into() },
                format!("{:.1}", c.lifetime_seconds),
                format!("{:.3}", c.vc_stability),
                format!("{:.2}", c.instructions_billions),
                format!("{:.1}", c.energy_in_joules),
                format!("{:.1}", c.energy_out_joules),
                format!("{}", c.transitions),
            ]
        })
        .collect();
    print_table(
        &["cell", "alive", "life (s)", "VC ±5%", "instr (G)", "E_in (J)", "E_out (J)", "trans"],
        &rows,
    );

    println!();
    println!(
        "  {} cells, {} brownouts, survival rate {:.0} %, {:.1} G instructions total",
        report.len(),
        report.brownout_count(),
        report.survival_rate() * 100.0,
        report.total_instructions_billions()
    );

    let group_rows = |groups: &[pn_sim::campaign::GroupSummary]| -> Vec<Vec<String>> {
        groups
            .iter()
            .map(|g| {
                vec![
                    g.label.clone(),
                    format!("{}", g.cells),
                    format!("{}", g.brownouts),
                    format!("{:.3}", g.vc_stability.mean().unwrap_or(0.0)),
                    format!("{:.2}", g.instructions_billions.sum()),
                    format!("{:.2}", g.energy_utilisation.mean().unwrap_or(0.0)),
                ]
            })
            .collect()
    };

    println!();
    println!("  by weather:");
    print_table(
        &["weather", "cells", "brownouts", "mean VC ±5%", "instr (G)", "E_out/E_in"],
        &group_rows(&report.by_weather()),
    );
    println!();
    println!("  by governor:");
    print_table(
        &["governor", "cells", "brownouts", "mean VC ±5%", "instr (G)", "E_out/E_in"],
        &group_rows(&report.by_governor()),
    );

    println!();
    println!(
        "  simulated {:.0} scenario-seconds in {:.2} s of wall time",
        report.cells().iter().map(|c| c.cell.duration.value()).sum::<f64>(),
        wall.as_secs_f64()
    );
    Ok(())
}
