//! Regenerates Fig. 4: board power vs operating frequency for the
//! eight core configurations.

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::fig04;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 4", "board power (W) vs operating frequency per core configuration");
    let fig = fig04::run()?;
    let headers: Vec<String> = std::iter::once("config".to_string())
        .chain(fig.curves[0].points.iter().map(|(g, _)| format!("{g:.2} GHz")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = fig
        .curves
        .iter()
        .map(|c| {
            std::iter::once(c.config.to_string())
                .chain(c.points.iter().map(|(_, p)| format!("{p:.2}")))
                .collect()
        })
        .collect();
    print_table(&header_refs, &rows);
    println!();
    let min = fig.curves[0].points[0].1;
    let max = fig.curves[7].points.last().map(|(_, p)| *p).unwrap_or(0.0);
    compare("power envelope (W)", "≈1.8 … ≈7", format!("{min:.2} … {max:.2}"));
    Ok(())
}
