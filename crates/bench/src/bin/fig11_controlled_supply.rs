//! Regenerates Fig. 11: system response to a controlled variable
//! supply (Vwidth = 335 mV, Vq = 190 mV, α = 0.238 V/s, β = 0.633 V/s).

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig11;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 11", "response to a controlled variable supply");
    let fig = fig11::run()?;
    println!(
        "{}",
        chart(&[&fig.v_supply], &ChartOptions::new("Vsupply (V)").with_labels("V", "s"))
    );
    println!(
        "{}",
        chart(
            &[&fig.frequency_mhz],
            &ChartOptions::new("operating frequency (MHz)").with_labels("MHz", "s")
        )
    );
    println!(
        "{}",
        chart(
            &[&fig.total_cores, &fig.little_cores],
            &ChartOptions::new("active cores (total *, LITTLE +)").with_labels("cores", "s")
        )
    );
    compare("behaviour at feature A (minor dips)", "DVFS only", "see frequency trace");
    compare("behaviour at feature B (sudden drop)", "cores shed + DVFS", "see core trace");
    compare("governor transitions", "frequent", fig.transitions);
    Ok(())
}
