//! Regenerates Fig. 15: CPU usage of the power-budgeting software.

use pn_bench::{banner, compare};
use pn_sim::experiments::fig15;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 15", "CPU overhead of the proposed approach");
    let fig = fig15::run(9, Seconds::from_hours(2.0))?;
    compare(
        "control software CPU usage",
        "0.104 %",
        format!("{:.3} %", fig.control_cpu_fraction * 100.0),
    );
    compare(
        "monitor power vs minimum system power",
        "1.61 mW < 0.82 %",
        format!("{:.2} %", fig.monitor_power_fraction_of_min * 100.0),
    );
    compare("OPP transitions performed", "frequent small", fig.transitions);
    Ok(())
}
