//! Regenerates Table II: performance of power-management schemes over
//! a 60-minute PV-powered test.

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::table2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Table II", "power-management schemes over a 60-minute PV test");
    let t = table2::run(3)?;
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.4}", r.renders_per_minute),
                r.lifetime.clone(),
                format!("{:.1}", r.instructions_billions),
            ]
        })
        .collect();
    print_table(
        &["scheme", "avg renders/min", "lifetime (MM:SS)", "instructions (B)"],
        &rows,
    );
    println!();
    compare("conservative lifetime", "00:05", &t.row("conservative").expect("row").lifetime);
    compare(
        "powersave",
        "0.1456 r/min, 2485.6 B over 60:00",
        format!(
            "{:.4} r/min, {:.1} B over {}",
            t.row("powersave").expect("row").renders_per_minute,
            t.row("powersave").expect("row").instructions_billions,
            t.row("powersave").expect("row").lifetime,
        ),
    );
    compare(
        "proposed approach",
        "0.2460 r/min, 4200.4 B over 60:00",
        format!(
            "{:.4} r/min, {:.1} B over {}",
            t.row("power-neutral").expect("row").renders_per_minute,
            t.row("power-neutral").expect("row").instructions_billions,
            t.row("power-neutral").expect("row").lifetime,
        ),
    );
    compare(
        "instruction advantage over powersave",
        "+69.0 %",
        format!("+{:.1} %", (t.proposed_over_powersave().expect("rows") - 1.0) * 100.0),
    );
    Ok(())
}
