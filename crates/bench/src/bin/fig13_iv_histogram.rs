//! Regenerates Fig. 13: the PV array's IV characteristics and the
//! proportion of time spent at each operating voltage.

use pn_analysis::ascii::bar_chart;
use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::fig13;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 13", "PV IV characteristics and operating-voltage residency");
    let fig = fig13::run(11, Seconds::from_hours(6.0))?;

    println!("\n  IV / PV characteristics at full sun:");
    let rows: Vec<Vec<String>> = fig
        .iv_curve
        .iter()
        .zip(fig.pv_curve.iter())
        .step_by(7)
        .map(|((v, i), (_, p))| {
            vec![format!("{v:.2}"), format!("{i:.3}"), format!("{p:.2}")]
        })
        .collect();
    print_table(&["V (V)", "I (A)", "P (W)"], &rows);

    println!();
    let bars: Vec<(String, f64)> = fig
        .residency
        .iter()
        .filter(|(_, frac)| *frac > 1e-6)
        .map(|(v, frac)| (format!("{v:.2} V"), *frac))
        .collect();
    println!("{}", bar_chart(&bars, 50, "fraction of time at each operating voltage"));

    compare("MPP voltage (V)", "5.3", format!("{:.2}", fig.mpp_voltage));
    compare("modal operating voltage (V)", "≈5.3 (at MPP)", format!("{:.2}", fig.modal_voltage));
    Ok(())
}
