//! The campaign daemon: a long-running TCP service that accepts
//! campaign specs, runs their shards on a worker pool, checkpoints
//! every finished shard atomically, and streams per-cell CSV rows to
//! any number of concurrent watchers (`pn_sim::daemon`).
//!
//! ```sh
//! # serve on a free loopback port, checkpointing under ./campaignd:
//! cargo run --release -p pn-bench --bin campaignd -- --dir campaignd
//! # the bound address is printed and published atomically to
//! # <dir>/campaignd.addr for scripts:
//! campaign --smoke --submit "$(cat campaignd/campaignd.addr)" --detach
//! ```
//!
//! Kill it at any instant (`SIGKILL` included): every artifact is
//! written atomically, so a restart on the same `--dir` revalidates
//! the checkpoints, reruns only the missing shards, and finishes every
//! interrupted job byte-identically to an uninterrupted run. Stop it
//! gracefully with the protocol's `shutdown` command.
//!
//! `--chaos <seed>[:<profile>]` arms the deterministic fault plane
//! (`pn_sim::chaos`): seeded injection of I/O faults (short writes,
//! failed sync/rename, ENOSPC) and stream faults (resets, torn lines,
//! stalls), with profiles `io`, `net` or `all`. Artifacts stay atomic
//! and retrying clients still converge byte-identically — that is the
//! property the chaos CI job pins.

use pn_sim::chaos::FaultPlan;
use pn_sim::daemon::{Daemon, DaemonConfig};
use pn_sim::persist;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    dir: String,
    addr: String,
    workers: usize,
    throttle_ms: Option<u64>,
    chaos: Option<FaultPlan>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        dir: String::new(),
        addr: "127.0.0.1:0".into(),
        workers: 0,
        throttle_ms: None,
        chaos: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--dir" => cli.dir = value("--dir")?,
            "--addr" => cli.addr = value("--addr")?,
            "--workers" => {
                cli.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--throttle-ms" => {
                cli.throttle_ms = Some(
                    value("--throttle-ms")?
                        .parse()
                        .map_err(|e| format!("--throttle-ms: {e}"))?,
                );
            }
            "--chaos" => {
                cli.chaos =
                    Some(FaultPlan::from_arg(&value("--chaos")?).map_err(|e| format!("--chaos: {e}"))?);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if cli.dir.is_empty() {
        return Err("--dir <checkpoint-dir> is required (restartable state lives there)".into());
    }
    Ok(cli)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = parse_cli()?;
    let mut config = DaemonConfig::new(&cli.dir).with_addr(cli.addr).with_workers(cli.workers);
    if let Some(ms) = cli.throttle_ms {
        config = config.with_throttle(Duration::from_millis(ms));
    }
    // Keep a handle on the plan: it counts what it injected, which is
    // the first thing to read when a chaos run behaves surprisingly.
    let plan = cli.chaos.map(Arc::new);
    if let Some(plan) = &plan {
        println!(
            "campaignd: chaos armed (seed {}, profile {})",
            plan.seed(),
            plan.profile()
        );
        config = config.with_io_policy(Arc::clone(plan) as _);
    }
    let daemon = Daemon::start(config)?;
    let addr = daemon.addr();
    // Publish the bound address (atomic, like every artifact) so
    // scripts that started us with :0 can find the port.
    let addr_file = std::path::Path::new(&cli.dir).join("campaignd.addr");
    persist::write_atomic(&addr_file, &format!("{addr}\n"))?;
    println!("campaignd listening on {addr} (checkpoints in {})", cli.dir);
    daemon.wait();
    if let Some(plan) = &plan {
        let (io, net) = plan.injected();
        println!("campaignd: chaos injected {io} I/O faults, {net} stream faults");
    }
    println!("campaignd: shutdown complete");
    Ok(())
}
