//! Regenerates Fig. 14: estimated available vs consumed power over
//! the day — the power-neutrality evidence.

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig14;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 14", "available (estimated) vs consumed power over the day");
    let fig = fig14::run(5, Seconds::from_hours(6.0))?;
    println!(
        "{}",
        chart(
            &[&fig.consumed, &fig.available],
            &ChartOptions::new("consumed (*) vs available (+) power (W)")
                .with_labels("W", "s since midnight")
        )
    );
    compare("mean utilisation of available power", "close to 1", format!("{:.2}", fig.utilisation));
    compare(
        "fraction of time overdrawing",
        "≈0 (must not exceed harvest)",
        format!("{:.3}", fig.overdraw_fraction),
    );
    Ok(())
}
