//! Regenerates the §III parameter-selection study: sweeping Vwidth,
//! Vq, α, β for VC stability (paper's optimum: 144 mV, 47.9 mV,
//! 0.120 V/s, 0.479 V/s).

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::params;
use pn_sim::sweep::SweepGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("§III sweep", "control-parameter selection by VC stability");
    let sweep = params::run(&SweepGrid::coarse())?;
    let rows: Vec<Vec<String>> = sweep
        .results
        .iter()
        .take(12)
        .map(|r| {
            vec![
                format!("{:.0}", r.params.v_width().to_millivolts()),
                format!("{:.1}", r.params.v_q().to_millivolts()),
                format!("{:.3}", r.params.alpha()),
                format!("{:.3}", r.params.beta()),
                format!("{:.3}", r.stability),
                if r.survived { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    print_table(
        &["Vwidth (mV)", "Vq (mV)", "α (V/s)", "β (V/s)", "±5% residency", "survived"],
        &rows,
    );
    println!();
    let best = sweep.best();
    compare(
        "best parameters (Vwidth, Vq, α, β)",
        "144 mV, 47.9 mV, 0.120, 0.479",
        format!(
            "{:.0} mV, {:.1} mV, {:.3}, {:.3}",
            best.params.v_width().to_millivolts(),
            best.params.v_q().to_millivolts(),
            best.params.alpha(),
            best.params.beta()
        ),
    );
    Ok(())
}
