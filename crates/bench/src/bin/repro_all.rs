//! Runs every experiment of the paper and prints a combined
//! paper-vs-measured report (the source for `EXPERIMENTS.md`).
//!
//! Day-scale experiments run shortened windows here so the whole
//! report finishes in minutes; the individual `figNN_*` binaries run
//! the full windows.

use pn_bench::{banner, compare};
use pn_sim::experiments::{
    fig01, fig03, fig04, fig06, fig07, fig10, fig11, fig12, fig13, fig14, fig15, params, table1,
    table2,
};
use pn_sim::sweep::SweepGrid;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("repro_all", "every figure and table, paper vs measured");

    let f1 = fig01::run(42, Seconds::new(30.0))?;
    compare("Fig. 1  peak cell power (W)", "~1.0", format!("{:.2}", f1.peak_watts));

    let f3 = fig03::run(Seconds::new(4.0), Seconds::new(16.0))?;
    compare(
        "Fig. 3  static lifetime (s) / scaled",
        "short / perpetual",
        format!(
            "{:.1} / {}",
            f3.static_lifetime.unwrap_or(f64::NAN),
            if f3.scaled_lifetime.is_none() { "survived" } else { "died" }
        ),
    );

    let f4 = fig04::run()?;
    compare(
        "Fig. 4  power envelope (W)",
        "1.8 … 7",
        format!(
            "{:.2} … {:.2}",
            f4.curves[0].points[0].1,
            f4.curves[7].points.last().map(|(_, p)| *p).unwrap_or(0.0)
        ),
    );

    let f6 = fig06::run(Seconds::new(2.0), Seconds::new(8.0))?;
    compare(
        "Fig. 6  controlled survives / static dies",
        "yes / yes",
        format!("{} / {}", f6.controlled_survived, f6.uncontrolled_lifetime.is_some()),
    );

    let f7 = fig07::run()?;
    compare(
        "Fig. 7  max FPS LITTLE / all cores",
        "0.065 / 0.25",
        format!(
            "{:.3} / {:.3}",
            f7.little_only.iter().map(|p| p.fps).fold(0.0, f64::max),
            f7.with_big.iter().map(|p| p.fps).fold(0.0, f64::max)
        ),
    );

    let f10 = fig10::run()?;
    compare(
        "Fig. 10 max hotplug / max DVFS (ms)",
        "≈40 / ≈3",
        format!(
            "{:.1} / {:.1}",
            f10.hotplug.iter().map(|b| b.latency_ms).fold(0.0, f64::max),
            f10.dvfs.iter().map(|b| b.latency_ms).fold(0.0, f64::max)
        ),
    );

    let t1 = table1::run()?;
    compare(
        "Table I δ (ms): freq-first / core-first",
        "345.42 / 63.21",
        format!("{:.1} / {:.1}", t1.frequency_first.transition_ms, t1.core_first.transition_ms),
    );
    compare(
        "Table I Q (C): freq-first / core-first",
        "0.1299 / 0.0461",
        format!("{:.4} / {:.4}", t1.frequency_first.charge_c, t1.core_first.charge_c),
    );

    let f11 = fig11::run()?;
    compare("Fig. 11 governor transitions", "frequent", f11.transitions);

    let f12 = fig12::run_with_duration(7, Seconds::from_minutes(30.0))?;
    compare(
        "Fig. 12 time within ±5 % of 5.3 V",
        "93.3 %",
        format!("{:.1} % (30-min window)", f12.within_5pct * 100.0),
    );

    let f13 = fig13::run(11, Seconds::from_minutes(30.0))?;
    compare(
        "Fig. 13 modal voltage vs MPP (V)",
        "≈5.3 vs 5.3",
        format!("{:.2} vs {:.2}", f13.modal_voltage, f13.mpp_voltage),
    );

    let f14 = fig14::run(5, Seconds::from_minutes(30.0))?;
    compare(
        "Fig. 14 utilisation / overdraw",
        "≈1 / ≈0",
        format!("{:.2} / {:.3}", f14.utilisation, f14.overdraw_fraction),
    );

    let t2 = table2::run_with_duration(3, Seconds::from_minutes(10.0))?;
    compare(
        "Table II proposed vs powersave instructions",
        "×1.69",
        format!("×{:.2} (10-min window)", t2.proposed_over_powersave().unwrap_or(f64::NAN)),
    );

    let f15 = fig15::run(9, Seconds::from_minutes(30.0))?;
    compare(
        "Fig. 15 control CPU usage",
        "0.104 %",
        format!("{:.3} %", f15.control_cpu_fraction * 100.0),
    );

    let sweep = params::run(&SweepGrid {
        v_width_mv: vec![144.0, 300.0],
        v_q_fraction: vec![0.333],
        alpha: vec![0.12],
        beta_multiple: vec![4.0],
    })?;
    let best = sweep.best();
    compare(
        "§III best Vwidth (mV)",
        "144",
        format!("{:.0}", best.params.v_width().to_millivolts()),
    );

    println!("\n  all experiments completed.");
    Ok(())
}
