//! Regenerates Table I: time and charge expended transitioning from
//! the highest to the lowest OPP, and the buffer capacitance each
//! response ordering requires.

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Table I", "worst-case transition cost and buffer-capacitor sizing");
    let t = table1::run()?;
    let rows = vec![
        vec![
            "(a) Frequency, Core".to_string(),
            format!("{:.2}", t.frequency_first.transition_ms),
            format!("{:.4}", t.frequency_first.charge_c),
            format!("{:.1}", t.frequency_first.required_mf),
        ],
        vec![
            "(b) Core, Frequency".to_string(),
            format!("{:.2}", t.core_first.transition_ms),
            format!("{:.4}", t.core_first.charge_c),
            format!("{:.1}", t.core_first.required_mf),
        ],
    ];
    print_table(
        &["scenario", "transition time δ (ms)", "charge Q (C)", "required C (mF)"],
        &rows,
    );
    println!();
    compare("δ ratio (a)/(b)", "5.5", format!("{:.2}", t.frequency_first.transition_ms / t.core_first.transition_ms));
    compare("Q ratio (a)/(b)", "2.8", format!("{:.2}", t.frequency_first.charge_c / t.core_first.charge_c));
    compare("paper's fitted part", "47 mF", format!("covers (b): {}", t.core_first.required_mf < 47.0));
    Ok(())
}
