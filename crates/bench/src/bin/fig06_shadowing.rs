//! Regenerates Fig. 6: the simulated control response to sudden
//! shadowing (Vwidth = 0.2 V, Vq = 80 mV, α = 0.1 V/s, β = 0.12 V/s).

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig06;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 6", "control-algorithm simulation through sudden shadowing");
    let fig = fig06::run(Seconds::new(2.0), Seconds::new(8.0))?;
    println!(
        "{}",
        chart(
            &[&fig.vc_controlled, &fig.vc_uncontrolled],
            &ChartOptions::new("VC with (*) and without (+) the control scheme (V)")
                .with_labels("V", "s")
        )
    );
    println!(
        "{}",
        chart(
            &[&fig.little_cores, &fig.big_cores],
            &ChartOptions::new("active cores under control").with_labels("cores", "s")
        )
    );
    println!(
        "{}",
        chart(
            &[&fig.frequency_ghz],
            &ChartOptions::new("operating frequency under control (GHz)")
                .with_labels("GHz", "s")
        )
    );
    compare("controlled system", "stays above Vmin", if fig.controlled_survived {
        "survived"
    } else {
        "browned out"
    });
    compare(
        "uncontrolled system",
        "falls below Vmin",
        fig.uncontrolled_lifetime
            .map_or("survived".into(), |s| format!("browned out at {s:.2} s")),
    );
    Ok(())
}
