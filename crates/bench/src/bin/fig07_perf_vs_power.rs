//! Regenerates Fig. 7: raytrace performance (FPS) vs board power
//! across OPPs, LITTLE-only and big+LITTLE panels.

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::fig07;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 7", "raytrace FPS vs board power per OPP");
    let fig = fig07::run()?;
    for (title, points) in
        [("LITTLE (A7) cores only", &fig.little_only), ("big+LITTLE cores", &fig.with_big)]
    {
        println!("\n  {title}:");
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| {
                // Print the paper's visible sample: every other level.
                (p.frequency_ghz * 100.0).round() as i64 % 2 == 0 || p.frequency_ghz >= 1.39
            })
            .map(|p| {
                vec![
                    p.config.to_string(),
                    format!("{:.2}", p.frequency_ghz),
                    format!("{:.2}", p.power_w),
                    format!("{:.4}", p.fps),
                ]
            })
            .collect();
        print_table(&["config", "GHz", "power (W)", "FPS"], &rows);
    }
    println!();
    let max_l = fig.little_only.iter().map(|p| p.fps).fold(0.0, f64::max);
    let max_b = fig.with_big.iter().map(|p| p.fps).fold(0.0, f64::max);
    compare("max FPS, LITTLE-only panel", "≈0.065", format!("{max_l:.4}"));
    compare("max FPS, big+LITTLE panel", "≈0.25", format!("{max_b:.4}"));
    Ok(())
}
