//! Bench smoke: times the engine under the exact and interpolated
//! supply models and writes a machine-readable JSON summary, so CI can
//! track the perf trajectory across PRs without parsing criterion
//! output.
//!
//! ```sh
//! cargo run --release -p pn-bench --bin bench_summary -- \
//!     --out BENCH_engine.json --campaign-out BENCH_campaign.json \
//!     [--runs 9] [--sim-seconds 10]
//! ```
//!
//! The headline metric is the median wall-clock nanoseconds the engine
//! spends per *simulated* second of the constant-sun power-neutral
//! scenario — the same workload as the `sim_engine` criterion bench —
//! reported for both supply models plus their ratio. Surfaces and the
//! irradiance trace are warmed before timing, so the numbers measure
//! the steady-state hot path, not one-time setup.
//!
//! `--campaign-out` additionally times the `sim_campaign` bench's
//! fixed 12-cell matrix end to end (`run_campaign`, two worker
//! threads) under the scalar oracle engine and the default batched
//! lane engine, and writes the medians in milliseconds.

use pn_sim::campaign::{run_campaign, CampaignSpec, GovernorSpec};
use pn_sim::engine::EngineKind;
use pn_sim::executor::Executor;
use pn_sim::scenario;
use pn_sim::supply::SupplyModel;
use pn_units::{Seconds, WattsPerSquareMeter};
use std::time::Instant;

struct Cli {
    out: Option<String>,
    campaign_out: Option<String>,
    runs: usize,
    sim_seconds: f64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli { out: None, campaign_out: None, runs: 9, sim_seconds: 10.0 };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--out" => cli.out = Some(value("--out")?),
            "--campaign-out" => cli.campaign_out = Some(value("--campaign-out")?),
            "--runs" => {
                cli.runs = value("--runs")?.parse().map_err(|e| format!("--runs: {e}"))?;
                if cli.runs == 0 {
                    return Err("--runs wants at least 1".into());
                }
            }
            "--sim-seconds" => {
                cli.sim_seconds = value("--sim-seconds")?
                    .parse()
                    .map_err(|e| format!("--sim-seconds: {e}"))?;
                if !(cli.sim_seconds > 0.0) {
                    return Err("--sim-seconds wants a positive window".into());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

/// One timed engine run; returns wall nanoseconds.
fn run_once(model: SupplyModel, sim_seconds: f64) -> Result<f64, pn_sim::SimError> {
    let scenario = scenario::constant_sun(
        WattsPerSquareMeter::new(560.0),
        Seconds::new(sim_seconds),
    )
    .with_supply_model(model);
    let t0 = Instant::now();
    let report = scenario.run_power_neutral()?;
    let ns = t0.elapsed().as_nanos() as f64;
    assert!(report.survived(), "bench scenario must not brown out");
    Ok(ns)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn measure(model: SupplyModel, cli: &Cli) -> Result<f64, pn_sim::SimError> {
    // Warm-up: builds the interpolation surface (shared cache) and
    // faults in everything else one-time.
    run_once(model, cli.sim_seconds)?;
    let mut samples = Vec::with_capacity(cli.runs);
    for _ in 0..cli.runs {
        samples.push(run_once(model, cli.sim_seconds)?);
    }
    Ok(median(&mut samples) / cli.sim_seconds)
}

/// The `sim_campaign` criterion bench's fixed 12-cell matrix.
fn campaign_matrix() -> CampaignSpec {
    CampaignSpec::new()
        .expect("paper preset valid")
        .with_weathers(vec![
            pn_harvest::weather::Weather::FullSun,
            pn_harvest::weather::Weather::PartialSun,
            pn_harvest::weather::Weather::Cloudy,
        ])
        .with_seeds(vec![1, 2])
        .with_governors(vec![GovernorSpec::PowerNeutral, GovernorSpec::Powersave])
        .with_duration(Seconds::new(5.0))
}

/// Median wall milliseconds for one full `run_campaign` of the
/// 12-cell matrix under `engine`. The warm-up run renders the six
/// distinct day traces into the process-wide day memo, so the timed
/// runs measure steady-state campaign throughput.
fn measure_campaign(
    engine: EngineKind,
    executor: &Executor,
    runs: usize,
) -> Result<f64, pn_sim::SimError> {
    let spec = campaign_matrix().with_engine(engine);
    run_campaign(&spec, executor)?;
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = Instant::now();
        let report = run_campaign(&spec, executor)?;
        samples.push(t0.elapsed().as_nanos() as f64);
        assert_eq!(report.len(), 12, "bench matrix drifted");
    }
    Ok(median(&mut samples) / 1e6)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = parse_cli()?;
    let interp = SupplyModel::interpolated();
    let exact_ns = measure(SupplyModel::Exact, &cli)?;
    let interp_ns = measure(interp, &cli)?;
    let speedup = exact_ns / interp_ns;
    let tol = match interp {
        SupplyModel::Interpolated { tol } => tol,
        SupplyModel::Exact => unreachable!("interp model selected above"),
    };
    let json = format!(
        "{{\n  \"bench\": \"sim_engine\",\n  \"scenario\": \"power_neutral_constant_sun\",\n  \
         \"simulated_seconds\": {},\n  \"runs\": {},\n  \
         \"exact_median_ns_per_sim_s\": {:.0},\n  \
         \"interpolated_median_ns_per_sim_s\": {:.0},\n  \
         \"interpolated_tol_amps\": {},\n  \"speedup\": {:.3}\n}}\n",
        cli.sim_seconds, cli.runs, exact_ns, interp_ns, tol, speedup
    );
    print!("{json}");
    if let Some(path) = &cli.out {
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = &cli.campaign_out {
        let executor = Executor::new(2);
        let scalar_ms = measure_campaign(EngineKind::Scalar, &executor, cli.runs)?;
        let batched_ms = measure_campaign(EngineKind::Batched, &executor, cli.runs)?;
        let json = format!(
            "{{\n  \"bench\": \"sim_campaign\",\n  \"matrix_cells\": 12,\n  \
             \"simulated_seconds_per_cell\": 5,\n  \"threads\": {},\n  \"runs\": {},\n  \
             \"scalar_median_ms\": {:.3},\n  \"batched_median_ms\": {:.3},\n  \
             \"speedup\": {:.3}\n}}\n",
            executor.threads(),
            cli.runs,
            scalar_ms,
            batched_ms,
            scalar_ms / batched_ms
        );
        print!("{json}");
        std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
