//! Regenerates Fig. 10: hot-plug latency per core-count transition at
//! three frequencies, and DVFS latency per configuration/direction.

use pn_bench::{banner, compare, print_table};
use pn_sim::experiments::fig10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 10", "core hot-plug and DVFS latencies");
    let fig = fig10::run()?;

    println!("\n  hot-plug latency (ms) per transition:");
    let mut rows = Vec::new();
    for from in 1..=7u8 {
        let mut row = vec![format!("{} -> {} cores", from, from + 1)];
        for ghz in [0.2, 0.8, 1.4] {
            let bar = fig
                .hotplug
                .iter()
                .find(|b| b.from == from && (b.frequency_ghz - ghz).abs() < 1e-9)
                .expect("bar exists");
            row.push(format!("{:.1}", bar.latency_ms));
        }
        rows.push(row);
    }
    print_table(&["transition", "200 MHz", "800 MHz", "1.4 GHz"], &rows);

    println!("\n  DVFS latency (ms) per configuration:");
    let rows: Vec<Vec<String>> = fig
        .dvfs
        .iter()
        .map(|b| {
            vec![
                b.config.to_string(),
                if b.down { "down".into() } else { "up".into() },
                format!("{:.2}", b.latency_ms),
            ]
        })
        .collect();
    print_table(&["config", "direction", "latency (ms)"], &rows);

    println!();
    let max_hp = fig.hotplug.iter().map(|b| b.latency_ms).fold(0.0, f64::max);
    let max_dvfs = fig.dvfs.iter().map(|b| b.latency_ms).fold(0.0, f64::max);
    compare("max hot-plug latency (ms)", "≈40 @200 MHz", format!("{max_hp:.1}"));
    compare("max DVFS latency (ms)", "≈3", format!("{max_dvfs:.2}"));
    Ok(())
}
