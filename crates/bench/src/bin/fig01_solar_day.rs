//! Regenerates Fig. 1: day-long power output of a 250 cm² solar cell
//! with macro and micro variability.

use pn_analysis::ascii::{chart, ChartOptions};
use pn_bench::{banner, compare};
use pn_sim::experiments::fig01;
use pn_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Fig. 1", "power output of a 250 cm² solar cell over a day");
    let fig = fig01::run(42, Seconds::new(20.0))?;
    println!(
        "{}",
        chart(
            &[&fig.power],
            &ChartOptions::new("cell output power over the day (W)")
                .with_labels("W", "s since midnight")
        )
    );
    compare("peak power (W)", "~1.0", format!("{:.2}", fig.peak_watts));
    compare(
        "micro variability (mean |Δ|/peak)",
        "visible dips",
        format!("{:.3}", fig.micro_variability),
    );
    Ok(())
}
