//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper (see `DESIGN.md` for the index) and prints the same rows or
//! series the paper reports, plus an ASCII rendition of the figure.

use std::fmt::Display;

/// Prints a fixed-width table with a header row and separator.
///
/// # Examples
///
/// ```
/// pn_bench::print_table(
///     &["scheme", "lifetime"],
///     &[vec!["powersave".into(), "60:00".into()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!("  {}", widths.iter().map(|w| "-".repeat(*w + 2)).collect::<String>());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a banner naming the experiment and its paper artefact.
pub fn banner(id: &str, description: &str) {
    println!();
    println!("════════════════════════════════════════════════════════════════════");
    println!("  {id} — {description}");
    println!("════════════════════════════════════════════════════════════════════");
}

/// Prints one paper-vs-measured comparison line.
pub fn compare(metric: &str, paper: impl Display, measured: impl Display) {
    println!("  {metric:<44} paper: {paper:<12} measured: {measured}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn print_helpers_do_not_panic() {
        super::banner("figX", "test");
        super::print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
        super::compare("metric", "1.0", 2.0);
    }
}
