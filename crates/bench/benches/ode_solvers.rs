//! Criterion bench: ODE solver step throughput (Euler vs RK4 vs the
//! adaptive RK23 the co-simulation uses).

use criterion::{criterion_group, criterion_main, Criterion};
use pn_circuit::ode::{AdaptiveOptions, Euler, FixedStepMethod, Rk23, Rk4};
use std::hint::black_box;

fn decay(_t: f64, y: &[f64; 1]) -> [f64; 1] {
    [-0.8 * y[0]]
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ode_integrate_1s");
    group.bench_function("euler_h1ms", |b| {
        b.iter(|| Euler.integrate(&mut decay, 0.0, [black_box(1.0)], 1.0, 1e-3).unwrap())
    });
    group.bench_function("rk4_h1ms", |b| {
        b.iter(|| Rk4.integrate(&mut decay, 0.0, [black_box(1.0)], 1.0, 1e-3).unwrap())
    });
    group.bench_function("rk23_adaptive", |b| {
        b.iter(|| {
            let mut solver = Rk23::new(AdaptiveOptions::new().with_max_step(0.05));
            solver.integrate(&mut decay, 0.0, [black_box(1.0)], 1.0).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
