//! Criterion bench: the smallpt workload itself (thumbnail frame at
//! the paper's 5 samples-per-pixel quality).

use criterion::{criterion_group, criterion_main, Criterion};
use pn_workload::render::{render, RenderSettings};
use pn_workload::scene::Scene;
use std::hint::black_box;

fn bench_raytracer(c: &mut Criterion) {
    let scene = Scene::cornell_box();
    let mut group = c.benchmark_group("raytracer");
    group.sample_size(10);
    group.bench_function("thumbnail_5spp", |b| {
        b.iter(|| black_box(render(&scene, RenderSettings::benchmark_thumbnail())))
    });
    group.bench_function("tiny_1spp", |b| {
        b.iter(|| {
            black_box(render(
                &scene,
                RenderSettings { width: 32, height: 24, samples_per_pixel: 1, seed: 1 },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_raytracer);
criterion_main!(benches);
