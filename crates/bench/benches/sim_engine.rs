//! Criterion bench: end-to-end co-simulation throughput (simulated
//! seconds per wall-clock second) under the power-neutral governor and
//! under the powersave baseline, for both supply models — the
//! `power_neutral_10s_constant_sun` vs `…_interpolated` pair is the
//! headline exact-vs-fast-path comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use pn_sim::scenario;
use pn_sim::supply::SupplyModel;
use pn_units::{Seconds, WattsPerSquareMeter};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    group.bench_function("power_neutral_10s_constant_sun", |b| {
        b.iter(|| {
            let report =
                scenario::constant_sun(WattsPerSquareMeter::new(560.0), Seconds::new(10.0))
                    .run_power_neutral()
                    .unwrap();
            black_box(report.transitions())
        })
    });
    // Same scenario on the interpolated supply fast path. Build the
    // shared surface outside the timed region: campaigns pay it once
    // per process, not once per cell.
    let _ = scenario::constant_sun(WattsPerSquareMeter::new(560.0), Seconds::new(0.5))
        .with_supply_model(SupplyModel::interpolated())
        .run_power_neutral()
        .unwrap();
    group.bench_function("power_neutral_10s_constant_sun_interpolated", |b| {
        b.iter(|| {
            let report =
                scenario::constant_sun(WattsPerSquareMeter::new(560.0), Seconds::new(10.0))
                    .with_supply_model(SupplyModel::interpolated())
                    .run_power_neutral()
                    .unwrap();
            black_box(report.transitions())
        })
    });
    group.bench_function("powersave_10s_constant_sun", |b| {
        b.iter(|| {
            let report =
                scenario::constant_sun(WattsPerSquareMeter::new(560.0), Seconds::new(10.0))
                    .run_powersave()
                    .unwrap();
            black_box(report.survived())
        })
    });
    group.bench_function("shadowing_8s", |b| {
        b.iter(|| {
            let report = scenario::shadowing(Seconds::new(2.0), Seconds::new(8.0))
                .run_power_neutral()
                .unwrap();
            black_box(report.survived())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
