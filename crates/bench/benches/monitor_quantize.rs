//! Criterion bench: threshold reprogramming — the divider/pot/
//! comparator inversion performed on every crossing.

use criterion::{criterion_group, criterion_main, Criterion};
use pn_monitor::monitor::VoltageMonitor;
use pn_monitor::threshold::ThresholdChannel;
use pn_units::Volts;
use std::hint::black_box;

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.bench_function("channel_set_threshold", |b| {
        let mut ch = ThresholdChannel::paper_channel().unwrap();
        let mut v = 4.3f64;
        b.iter(|| {
            v = if v > 5.6 { 4.3 } else { v + 0.01 };
            black_box(ch.set_threshold(Volts::new(v)).unwrap())
        })
    });
    group.bench_function("dual_threshold_reprogram", |b| {
        let mut mon = VoltageMonitor::paper_board().unwrap();
        let mut v = 4.5f64;
        b.iter(|| {
            v = if v > 5.5 { 4.5 } else { v + 0.01 };
            black_box(mon.set_thresholds(Volts::new(v + 0.1), Volts::new(v - 0.1)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
