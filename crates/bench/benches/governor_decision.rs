//! Criterion bench: power-neutral governor decision latency — the
//! interrupt-handler cost the paper measures at ≈0.104 % CPU.

use criterion::{criterion_group, criterion_main, Criterion};
use pn_core::events::{Governor, GovernorEvent, ThresholdEdge};
use pn_core::governor::PowerNeutralGovernor;
use pn_core::params::ControlParams;
use pn_soc::cores::CoreConfig;
use pn_soc::opp::Opp;
use pn_soc::platform::Platform;
use pn_units::{Seconds, Volts};
use std::hint::black_box;

fn bench_governor(c: &mut Criterion) {
    let platform = Platform::odroid_xu4();
    let mut group = c.benchmark_group("governor");
    group.bench_function("threshold_crossing_decision", |b| {
        let mut gov =
            PowerNeutralGovernor::new(ControlParams::paper_optimal().unwrap(), &platform)
                .unwrap();
        let opp = Opp::new(CoreConfig::new(4, 2).unwrap(), 5);
        gov.start(Seconds::ZERO, Volts::new(5.3), opp);
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.25;
            let edge = if ((t / 0.25) as u64).is_multiple_of(2) {
                ThresholdEdge::Low
            } else {
                ThresholdEdge::High
            };
            let event = GovernorEvent::ThresholdCrossed {
                edge,
                vc: Volts::new(5.3),
                t: Seconds::new(t),
            };
            black_box(gov.on_event(&event, opp))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_governor);
criterion_main!(benches);
