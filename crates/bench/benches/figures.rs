//! Criterion bench: regeneration cost of the model-driven figures and
//! tables (the sim-driven ones are exercised via `sim_engine`).

use criterion::{criterion_group, criterion_main, Criterion};
use pn_sim::experiments::{fig04, fig07, fig10, table1};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig04_power_curves", |b| b.iter(|| black_box(fig04::run().unwrap())));
    group.bench_function("fig07_perf_points", |b| b.iter(|| black_box(fig07::run().unwrap())));
    group.bench_function("fig10_latencies", |b| b.iter(|| black_box(fig10::run().unwrap())));
    group.bench_function("table1_sizing", |b| b.iter(|| black_box(table1::run().unwrap())));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
