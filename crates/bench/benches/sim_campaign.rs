//! Criterion bench: campaign throughput versus executor width, and
//! the shared-trace-cache win.
//!
//! Runs the same fixed 12-cell matrix on 1, 2 and 4 worker threads.
//! The cells are independent simulations, so wall time should fall
//! near-linearly with thread count until the machine runs out of
//! cores; comparing the three lines makes scaling regressions in the
//! executor (or accidental serialisation in the campaign layer)
//! visible.
//!
//! The `trace_cache` group runs the matrix with and without the
//! per-campaign (weather, seed) trace cache. Since the process-wide
//! day memo (`DayProfile::build_shared`) landed, both lines serve the
//! 6 distinct days from the same rendered traces after the first
//! iteration, so they sit together at steady-state throughput; the
//! campaign cache still matters for day recipes the global memo
//! evicts (it is capacity-capped) and keeps the comparison in place
//! to catch either layer regressing.
//!
//! The `supply_model` group is the tentpole comparison: the same
//! 12-cell matrix over a *pre-warmed* shared trace cache (steady-state
//! campaign throughput, simulation-dominated) under the exact model
//! versus the interpolated supply fast path. The interpolated line is
//! the one the ≥2× target in the README's performance table tracks.

use criterion::{criterion_group, criterion_main, Criterion};
use pn_harvest::cache::TraceCache;
use pn_sim::campaign::{run_campaign, run_campaign_with, CampaignSpec, GovernorSpec};
use pn_sim::executor::Executor;
use pn_sim::supply::SupplyModel;
use pn_units::Seconds;
use std::hint::black_box;

fn matrix() -> CampaignSpec {
    CampaignSpec::new()
        .expect("paper preset valid")
        .with_weathers(vec![
            pn_harvest::weather::Weather::FullSun,
            pn_harvest::weather::Weather::PartialSun,
            pn_harvest::weather::Weather::Cloudy,
        ])
        .with_seeds(vec![1, 2])
        .with_governors(vec![GovernorSpec::PowerNeutral, GovernorSpec::Powersave])
        .with_duration(Seconds::new(5.0))
}

fn bench_campaign(c: &mut Criterion) {
    let spec = matrix();
    assert_eq!(spec.cell_count(), 12);
    let mut group = c.benchmark_group("sim_campaign");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let executor = Executor::new(threads);
        group.bench_function(&format!("12_cells_{threads}_threads"), |b| {
            b.iter(|| {
                let report = run_campaign(&spec, &executor).unwrap();
                black_box(report.brownout_count())
            })
        });
    }
    group.finish();
}

fn bench_trace_cache(c: &mut Criterion) {
    let spec = matrix();
    let executor = Executor::new(2);
    let mut group = c.benchmark_group("trace_cache");
    group.sample_size(10);
    group.bench_function("12_cells_uncached", |b| {
        b.iter(|| {
            let report = run_campaign_with(&spec, &executor, None).unwrap();
            black_box(report.brownout_count())
        })
    });
    // A fresh cache per iteration: exactly what one campaign start-up
    // pays (6 renders instead of 12).
    group.bench_function("12_cells_cached", |b| {
        b.iter(|| {
            let report = run_campaign(&spec, &executor).unwrap();
            black_box(report.brownout_count())
        })
    });
    group.finish();
}

fn bench_supply_model(c: &mut Criterion) {
    let exact = matrix();
    let interp = matrix().with_supply_model(SupplyModel::interpolated());
    let executor = Executor::new(2);
    // Pre-warm: render the 6 distinct day traces into a shared cache
    // and build the interpolation surface, so both lines time the
    // simulations themselves (steady-state campaign throughput).
    let cache = TraceCache::new();
    run_campaign_with(&exact, &executor, Some(&cache)).unwrap();
    run_campaign_with(&interp, &executor, Some(&cache)).unwrap();
    let mut group = c.benchmark_group("supply_model");
    group.sample_size(10);
    group.bench_function("12_cells_exact", |b| {
        b.iter(|| {
            let report = run_campaign_with(&exact, &executor, Some(&cache)).unwrap();
            black_box(report.brownout_count())
        })
    });
    group.bench_function("12_cells_interpolated", |b| {
        b.iter(|| {
            let report = run_campaign_with(&interp, &executor, Some(&cache)).unwrap();
            black_box(report.brownout_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_trace_cache, bench_supply_model);
criterion_main!(benches);
