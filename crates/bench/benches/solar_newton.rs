//! Criterion bench: the implicit single-diode operating-point solve —
//! the co-simulation's innermost hot path (several calls per ODE step).

use criterion::{criterion_group, criterion_main, Criterion};
use pn_circuit::solar::SolarCell;
use pn_units::{Volts, WattsPerSquareMeter};
use std::hint::black_box;

fn bench_solar(c: &mut Criterion) {
    let cell = SolarCell::odroid_array();
    let g = WattsPerSquareMeter::new(560.0);
    let mut group = c.benchmark_group("solar_cell");
    group.bench_function("current_at_mpp", |b| {
        b.iter(|| cell.current(black_box(Volts::new(5.3)), g).unwrap())
    });
    group.bench_function("open_circuit_voltage", |b| {
        b.iter(|| cell.open_circuit_voltage(black_box(g)).unwrap())
    });
    group.bench_function("max_power_point", |b| {
        b.iter(|| cell.max_power_point(black_box(g)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_solar);
criterion_main!(benches);
