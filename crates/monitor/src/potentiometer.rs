//! The MCP4131 SPI digital potentiometer.
//!
//! The MCP4131 has 129 wiper positions (tap 0 … 128). The processor
//! writes the wiper register over SPI — a 16-bit transaction — which is
//! the mechanism by which the paper's governor *moves* a voltage
//! threshold after every crossing.

use crate::MonitorError;
use pn_units::{Ohms, Seconds};

/// Number of wiper positions of the MCP4131 (7-bit + full-scale).
pub const MCP4131_TAPS: u16 = 129;

/// An MCP4131 digital potentiometer.
///
/// # Examples
///
/// ```
/// use pn_monitor::potentiometer::Mcp4131;
///
/// # fn main() -> Result<(), pn_monitor::MonitorError> {
/// let mut pot = Mcp4131::new_100k()?;
/// pot.set_tap(64)?;
/// assert!((pot.wiper_fraction() - 0.5).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcp4131 {
    full_scale: Ohms,
    wiper_resistance: Ohms,
    spi_clock_hz: f64,
    tap: u16,
}

impl Mcp4131 {
    /// Creates a potentiometer with the given end-to-end resistance and
    /// SPI clock.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] for non-positive
    /// resistance or clock.
    pub fn new(full_scale: Ohms, spi_clock_hz: f64) -> Result<Self, MonitorError> {
        if !(full_scale.value() > 0.0) {
            return Err(MonitorError::InvalidParameter("full-scale resistance must be positive"));
        }
        if !(spi_clock_hz > 0.0) {
            return Err(MonitorError::InvalidParameter("spi clock must be positive"));
        }
        Ok(Self {
            full_scale,
            wiper_resistance: Ohms::new(75.0), // datasheet typical
            spi_clock_hz,
            tap: MCP4131_TAPS / 2,
        })
    }

    /// The 100 kΩ variant at a 1 MHz SPI clock (the paper's schematic
    /// labels the part MCP4131-104).
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn new_100k() -> Result<Self, MonitorError> {
        Self::new(Ohms::new(100e3), 1.0e6)
    }

    /// Current wiper tap (0 ..= 128).
    pub fn tap(&self) -> u16 {
        self.tap
    }

    /// Sets the wiper tap.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] for a tap above 128.
    pub fn set_tap(&mut self, tap: u16) -> Result<(), MonitorError> {
        if tap >= MCP4131_TAPS {
            return Err(MonitorError::InvalidParameter("tap must be 0..=128"));
        }
        self.tap = tap;
        Ok(())
    }

    /// Wiper position as a fraction of full scale.
    pub fn wiper_fraction(&self) -> f64 {
        f64::from(self.tap) / f64::from(MCP4131_TAPS - 1)
    }

    /// Resistance between wiper and the B terminal.
    pub fn resistance_wb(&self) -> Ohms {
        self.full_scale * self.wiper_fraction() + self.wiper_resistance
    }

    /// Resistance between wiper and the A terminal.
    pub fn resistance_wa(&self) -> Ohms {
        self.full_scale * (1.0 - self.wiper_fraction()) + self.wiper_resistance
    }

    /// Duration of one wiper write: a 16-bit SPI frame plus chip-select
    /// framing overhead.
    pub fn write_latency(&self) -> Seconds {
        let frame_bits = 16.0;
        let cs_overhead = 2.0e-6;
        Seconds::new(frame_bits / self.spi_clock_hz + cs_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tap_range_is_enforced() {
        let mut pot = Mcp4131::new_100k().unwrap();
        assert!(pot.set_tap(128).is_ok());
        assert!(pot.set_tap(129).is_err());
    }

    #[test]
    fn endpoints() {
        let mut pot = Mcp4131::new_100k().unwrap();
        pot.set_tap(0).unwrap();
        assert_eq!(pot.wiper_fraction(), 0.0);
        assert!((pot.resistance_wb().value() - 75.0).abs() < 1e-9);
        pot.set_tap(128).unwrap();
        assert_eq!(pot.wiper_fraction(), 1.0);
        assert!((pot.resistance_wa().value() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn write_latency_is_tens_of_microseconds() {
        let pot = Mcp4131::new_100k().unwrap();
        let lat = pot.write_latency().value();
        assert!(lat > 1e-6 && lat < 1e-4, "latency {lat}");
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(Mcp4131::new(Ohms::new(0.0), 1e6).is_err());
        assert!(Mcp4131::new(Ohms::new(1e5), 0.0).is_err());
    }

    proptest! {
        #[test]
        fn wa_plus_wb_is_constant(tap in 0u16..129) {
            let mut pot = Mcp4131::new_100k().unwrap();
            pot.set_tap(tap).unwrap();
            let total = pot.resistance_wa().value() + pot.resistance_wb().value();
            // Full scale + 2 wiper resistances.
            prop_assert!((total - (100e3 + 150.0)).abs() < 1e-6);
        }

        #[test]
        fn tap_round_trips_through_wiper_fraction(tap in 0u16..129) {
            // tap → fraction → tap is lossless: the wiper grid is the
            // quantization authority for the whole threshold channel.
            let mut pot = Mcp4131::new_100k().unwrap();
            pot.set_tap(tap).unwrap();
            prop_assert_eq!(pot.tap(), tap);
            let back = (pot.wiper_fraction() * f64::from(MCP4131_TAPS - 1)).round() as u16;
            prop_assert_eq!(back, tap);
        }
    }
}
