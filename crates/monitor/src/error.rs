//! Error type for the monitoring-hardware model.

use std::error::Error;
use std::fmt;

/// Errors raised by the voltage-monitor model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MonitorError {
    /// A component parameter was out of its physical domain.
    InvalidParameter(&'static str),
    /// A requested threshold voltage cannot be realised by the divider
    /// and potentiometer range.
    ThresholdOutOfRange {
        /// The requested threshold.
        requested: f64,
        /// Lowest achievable threshold.
        min: f64,
        /// Highest achievable threshold.
        max: f64,
    },
    /// Threshold ordering violated (`low` must stay below `high`).
    ThresholdsInverted {
        /// Requested high threshold.
        high: f64,
        /// Requested low threshold.
        low: f64,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::InvalidParameter(why) => write!(f, "invalid parameter: {why}"),
            MonitorError::ThresholdOutOfRange { requested, min, max } => {
                write!(f, "threshold {requested} V outside achievable range [{min}, {max}] V")
            }
            MonitorError::ThresholdsInverted { high, low } => {
                write!(f, "thresholds inverted: high {high} V not above low {low} V")
            }
        }
    }
}

impl Error for MonitorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = MonitorError::ThresholdOutOfRange { requested: 9.0, min: 4.0, max: 6.0 };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<MonitorError>();
    }
}
