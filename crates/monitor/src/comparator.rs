//! The LT6703 comparator stage.
//!
//! The LT6703 is a micropower comparator with a built-in 400 mV
//! reference. It compares the divided/trimmed supply voltage against
//! that reference and its output (after the MOSFET level shifter of
//! Fig. 9) is the interrupt line seen by the SoC. The model is
//! stateful: built-in hysteresis means an edge only fires after the
//! input has genuinely crossed out of the dead band, which suppresses
//! chatter when `VC` hovers at a threshold.

use crate::MonitorError;
use pn_units::{Seconds, Volts};

/// The LT6703's internal reference voltage.
pub const LT6703_REFERENCE: Volts = Volts::new(0.400);

/// Output edge produced by a comparator state update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComparatorEdge {
    /// Output switched low → high (input rose above ref + hysteresis).
    Rising,
    /// Output switched high → low (input fell below ref − hysteresis).
    Falling,
}

/// A hysteretic comparator against a fixed reference.
///
/// # Examples
///
/// ```
/// use pn_monitor::comparator::{Comparator, ComparatorEdge};
/// use pn_units::Volts;
///
/// # fn main() -> Result<(), pn_monitor::MonitorError> {
/// let mut cmp = Comparator::lt6703()?;
/// assert_eq!(cmp.update(Volts::new(0.39)), None);          // below ref
/// assert_eq!(cmp.update(Volts::new(0.41)), Some(ComparatorEdge::Rising));
/// assert_eq!(cmp.update(Volts::new(0.4005)), None);        // inside dead band
/// assert_eq!(cmp.update(Volts::new(0.39)), Some(ComparatorEdge::Falling));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    reference: Volts,
    hysteresis: Volts,
    propagation_delay: Seconds,
    output_high: bool,
}

impl Comparator {
    /// Creates a comparator.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] for a non-positive
    /// reference or negative hysteresis/delay.
    pub fn new(
        reference: Volts,
        hysteresis: Volts,
        propagation_delay: Seconds,
    ) -> Result<Self, MonitorError> {
        if !(reference.value() > 0.0) {
            return Err(MonitorError::InvalidParameter("reference must be positive"));
        }
        if hysteresis.value() < 0.0 || propagation_delay.value() < 0.0 {
            return Err(MonitorError::InvalidParameter(
                "hysteresis and delay must be non-negative",
            ));
        }
        Ok(Self { reference, hysteresis, propagation_delay, output_high: false })
    }

    /// The LT6703 with datasheet-typical 2 mV input hysteresis and a
    /// 20 µs propagation delay (micropower part).
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn lt6703() -> Result<Self, MonitorError> {
        Self::new(LT6703_REFERENCE, Volts::from_millivolts(2.0), Seconds::new(20e-6))
    }

    /// The reference voltage.
    pub fn reference(&self) -> Volts {
        self.reference
    }

    /// The input-referred hysteresis (full band is ±hysteresis/2 around
    /// the reference).
    pub fn hysteresis(&self) -> Volts {
        self.hysteresis
    }

    /// The propagation delay from input crossing to output edge.
    pub fn propagation_delay(&self) -> Seconds {
        self.propagation_delay
    }

    /// Current output state.
    pub fn is_output_high(&self) -> bool {
        self.output_high
    }

    /// Feeds a new input sample; returns the output edge, if any.
    pub fn update(&mut self, input: Volts) -> Option<ComparatorEdge> {
        let half_band = self.hysteresis * 0.5;
        if !self.output_high && input > self.reference + half_band {
            self.output_high = true;
            return Some(ComparatorEdge::Rising);
        }
        if self.output_high && input < self.reference - half_band {
            self.output_high = false;
            return Some(ComparatorEdge::Falling);
        }
        None
    }

    /// Resets the output state (e.g. at power-on) given an initial
    /// input level.
    pub fn reset(&mut self, input: Volts) {
        self.output_high = input > self.reference;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hysteresis_suppresses_chatter() {
        let mut cmp = Comparator::lt6703().unwrap();
        assert_eq!(cmp.update(Volts::new(0.4011)), Some(ComparatorEdge::Rising));
        // Tiny wobbles inside the band produce nothing.
        for v in [0.4002, 0.3995, 0.4003, 0.3991] {
            assert_eq!(cmp.update(Volts::new(v)), None, "chatter at {v}");
        }
        assert_eq!(cmp.update(Volts::new(0.3985)), Some(ComparatorEdge::Falling));
    }

    #[test]
    fn reset_tracks_input_level() {
        let mut cmp = Comparator::lt6703().unwrap();
        cmp.reset(Volts::new(0.5));
        assert!(cmp.is_output_high());
        // No rising edge when already high.
        assert_eq!(cmp.update(Volts::new(0.6)), None);
    }

    #[test]
    fn construction_validation() {
        assert!(Comparator::new(Volts::ZERO, Volts::ZERO, Seconds::ZERO).is_err());
        assert!(Comparator::new(Volts::new(0.4), Volts::new(-0.1), Seconds::ZERO).is_err());
        assert!(Comparator::new(Volts::new(0.4), Volts::ZERO, Seconds::new(-1.0)).is_err());
    }

    proptest! {
        #[test]
        fn edges_alternate(levels in proptest::collection::vec(0.2f64..0.6, 1..100)) {
            let mut cmp = Comparator::lt6703().unwrap();
            let mut last = None;
            for v in levels {
                if let Some(edge) = cmp.update(Volts::new(v)) {
                    if let Some(prev) = last {
                        prop_assert_ne!(edge, prev, "two consecutive identical edges");
                    }
                    last = Some(edge);
                }
            }
        }
    }
}
