//! One complete threshold channel: divider + digital pot + comparator.
//!
//! The channel maps a *requested* supply-voltage threshold to the
//! nearest *achievable* one. The front divider sets a coarse ratio and
//! the potentiometer trims it over a span of roughly ±17.5 %, so the
//! achievable thresholds form a 129-point grid over approximately
//! 4.1 … 5.9 V with ≈14 mV resolution — comfortably finer than the
//! paper's optimal `Vq` of 47.9 mV.

use crate::comparator::Comparator;
use crate::divider::Divider;
use crate::potentiometer::{Mcp4131, MCP4131_TAPS};
use crate::MonitorError;
use pn_units::{Seconds, Volts};

/// A single configurable threshold channel of Fig. 9.
///
/// # Examples
///
/// ```
/// use pn_monitor::threshold::ThresholdChannel;
/// use pn_units::Volts;
///
/// # fn main() -> Result<(), pn_monitor::MonitorError> {
/// let mut ch = ThresholdChannel::paper_channel()?;
/// let achieved = ch.set_threshold(Volts::new(5.30))?;
/// assert!((achieved.value() - 5.30).abs() < ch.quantization_step().value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdChannel {
    base_ratio: f64,
    trim_span: f64,
    pot: Mcp4131,
    comparator: Comparator,
}

impl ThresholdChannel {
    /// Creates a channel.
    ///
    /// `base_ratio` is the mid-tap division ratio; the pot trims the
    /// effective ratio linearly over `base_ratio · (1 ± trim_span/2)`.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] when `base_ratio` is
    /// not in `(0, 1)` or `trim_span` not in `(0, 1)`.
    pub fn new(
        base_ratio: f64,
        trim_span: f64,
        pot: Mcp4131,
        comparator: Comparator,
    ) -> Result<Self, MonitorError> {
        if !(base_ratio > 0.0 && base_ratio < 1.0) {
            return Err(MonitorError::InvalidParameter("base_ratio must be in (0, 1)"));
        }
        if !(trim_span > 0.0 && trim_span < 1.0) {
            return Err(MonitorError::InvalidParameter("trim_span must be in (0, 1)"));
        }
        Ok(Self { base_ratio, trim_span, pot, comparator })
    }

    /// The paper's channel: front divider plus 1 MΩ/1 MΩ trim network
    /// scaled so the achievable threshold range covers the ODROID's
    /// 4.1 … 5.7 V window with margin.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn paper_channel() -> Result<Self, MonitorError> {
        // Mid-tap threshold centred at 4.9 V: ratio = 0.4 V / 4.9 V.
        let divider = Divider::paper_front_divider();
        // The front divider provides 0.1754; the 1M/1M + pot network
        // scales the remainder. We model the combined effective ratio
        // directly, which preserves the achievable-threshold grid.
        let _ = divider; // front stage documented; combined ratio below
        Self::new(0.4 / 4.9, 0.40, Mcp4131::new_100k()?, Comparator::lt6703()?)
    }

    /// Effective division ratio at the current pot tap.
    pub fn ratio(&self) -> f64 {
        let trim = self.trim_span * (self.pot.wiper_fraction() - 0.5);
        self.base_ratio * (1.0 + trim)
    }

    /// The supply-voltage threshold currently realised by the channel:
    /// the input voltage at which the divided signal meets the
    /// comparator reference.
    pub fn effective_threshold(&self) -> Volts {
        Volts::new(self.comparator.reference().value() / self.ratio())
    }

    /// Lowest achievable threshold (pot at full scale).
    pub fn min_threshold(&self) -> Volts {
        Volts::new(
            self.comparator.reference().value() / (self.base_ratio * (1.0 + self.trim_span * 0.5)),
        )
    }

    /// Highest achievable threshold (pot at zero).
    pub fn max_threshold(&self) -> Volts {
        Volts::new(
            self.comparator.reference().value() / (self.base_ratio * (1.0 - self.trim_span * 0.5)),
        )
    }

    /// Approximate threshold resolution (one pot tap near mid-scale).
    pub fn quantization_step(&self) -> Volts {
        Volts::new(
            (self.max_threshold().value() - self.min_threshold().value())
                / f64::from(MCP4131_TAPS - 1),
        )
    }

    /// Requests a threshold; the channel programs the nearest pot tap
    /// and returns the threshold actually achieved.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::ThresholdOutOfRange`] when the request
    /// lies outside the achievable grid.
    pub fn set_threshold(&mut self, requested: Volts) -> Result<Volts, MonitorError> {
        let (min, max) = (self.min_threshold(), self.max_threshold());
        if requested < min || requested > max {
            return Err(MonitorError::ThresholdOutOfRange {
                requested: requested.value(),
                min: min.value(),
                max: max.value(),
            });
        }
        // Invert threshold → ratio → wiper fraction → tap.
        let ratio = self.comparator.reference().value() / requested.value();
        let fraction = ((ratio / self.base_ratio - 1.0) / self.trim_span + 0.5).clamp(0.0, 1.0);
        let tap = (fraction * f64::from(MCP4131_TAPS - 1)).round() as u16;
        self.pot.set_tap(tap.min(MCP4131_TAPS - 1))?;
        Ok(self.effective_threshold())
    }

    /// Requests a threshold, clamping out-of-range requests to the
    /// nearest achievable endpoint instead of failing.
    pub fn set_threshold_clamped(&mut self, requested: Volts) -> Volts {
        let clamped = requested.clamp(self.min_threshold(), self.max_threshold());
        self.set_threshold(clamped).expect("clamped request is always achievable")
    }

    /// Latency to reprogram the threshold (one SPI wiper write).
    pub fn reprogram_latency(&self) -> Seconds {
        self.pot.write_latency()
    }

    /// The comparator stage (stateful interrupt generation).
    pub fn comparator(&self) -> &Comparator {
        &self.comparator
    }

    /// Mutable access to the comparator stage.
    pub fn comparator_mut(&mut self) -> &mut Comparator {
        &mut self.comparator
    }

    /// Divided-and-trimmed voltage presented to the comparator for a
    /// given supply voltage.
    pub fn sense_voltage(&self, supply: Volts) -> Volts {
        supply * self.ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_covers_operating_window() {
        let ch = ThresholdChannel::paper_channel().unwrap();
        assert!(ch.min_threshold().value() < 4.1, "min {:?}", ch.min_threshold());
        assert!(ch.max_threshold().value() > 5.7, "max {:?}", ch.max_threshold());
    }

    #[test]
    fn quantization_is_finer_than_vq() {
        let ch = ThresholdChannel::paper_channel().unwrap();
        // Paper's optimal Vq is 47.9 mV; the hardware grid must resolve it.
        assert!(ch.quantization_step().to_millivolts() < 20.0);
    }

    #[test]
    fn set_threshold_achieves_within_one_step() {
        let mut ch = ThresholdChannel::paper_channel().unwrap();
        for target in [4.2, 4.7, 5.0, 5.3, 5.65] {
            let achieved = ch.set_threshold(Volts::new(target)).unwrap();
            assert!(
                (achieved.value() - target).abs() <= ch.quantization_step().value(),
                "target {target}, achieved {achieved}"
            );
        }
    }

    #[test]
    fn out_of_range_requests_fail_or_clamp() {
        let mut ch = ThresholdChannel::paper_channel().unwrap();
        assert!(matches!(
            ch.set_threshold(Volts::new(9.0)),
            Err(MonitorError::ThresholdOutOfRange { .. })
        ));
        let clamped = ch.set_threshold_clamped(Volts::new(9.0));
        assert!((clamped - ch.max_threshold()).abs() <= ch.quantization_step());
        let clamped = ch.set_threshold_clamped(Volts::new(1.0));
        assert!((clamped - ch.min_threshold()).abs() <= ch.quantization_step());
    }

    #[test]
    fn sense_voltage_meets_reference_at_threshold() {
        let mut ch = ThresholdChannel::paper_channel().unwrap();
        let achieved = ch.set_threshold(Volts::new(5.3)).unwrap();
        let sense = ch.sense_voltage(achieved);
        assert!((sense.value() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn constructor_validates() {
        let pot = Mcp4131::new_100k().unwrap();
        let cmp = Comparator::lt6703().unwrap();
        assert!(ThresholdChannel::new(0.0, 0.3, pot, cmp).is_err());
        assert!(ThresholdChannel::new(0.1, 1.5, pot, cmp).is_err());
    }

    proptest! {
        #[test]
        fn achieved_thresholds_are_monotone_in_request(a in 4.2f64..5.6, d in 0.05f64..0.3) {
            let mut ch = ThresholdChannel::paper_channel().unwrap();
            let low = ch.set_threshold(Volts::new(a)).unwrap();
            let high = ch.set_threshold(Volts::new((a + d).min(5.85))).unwrap();
            prop_assert!(high >= low);
        }

        #[test]
        fn quantized_threshold_is_within_one_lsb(target in 4.2f64..5.8) {
            // Rounding to the nearest tap leaves at most half the local
            // grid pitch of error, which stays under one nominal LSB
            // (`quantization_step`) across the whole achievable range.
            let mut ch = ThresholdChannel::paper_channel().unwrap();
            let achieved = ch.set_threshold(Volts::new(target)).unwrap();
            prop_assert!(
                (achieved.value() - target).abs() <= ch.quantization_step().value(),
                "target {} achieved {}", target, achieved
            );
        }

        #[test]
        fn requantizing_an_achieved_threshold_is_a_fixed_point(target in 4.2f64..5.8) {
            // Quantization round-trip: once a request has been snapped
            // to the grid, re-requesting the snapped value must not
            // move the wiper again.
            let mut ch = ThresholdChannel::paper_channel().unwrap();
            let achieved = ch.set_threshold(Volts::new(target)).unwrap();
            let tap = ch.pot.tap();
            let again = ch.set_threshold(achieved).unwrap();
            prop_assert_eq!(ch.pot.tap(), tap);
            prop_assert!((again - achieved).abs() < Volts::new(1e-12));
        }
    }
}
