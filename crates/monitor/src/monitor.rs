//! The dual-channel voltage monitor.
//!
//! Two [`ThresholdChannel`]s — one for `Vhigh`, one for `Vlow` — plus
//! the interrupt-latency budget and the measured 1.61 mW power draw of
//! the external board (§V-D of the paper).

use crate::threshold::ThresholdChannel;
use crate::MonitorError;
use pn_units::{Seconds, Volts, Watts};

/// Which threshold channel produced an interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdKind {
    /// The upper (`Vhigh`) threshold.
    High,
    /// The lower (`Vlow`) threshold.
    Low,
}

/// The complete external monitoring board of Fig. 9.
///
/// # Examples
///
/// ```
/// use pn_monitor::monitor::{ThresholdKind, VoltageMonitor};
/// use pn_units::Volts;
///
/// # fn main() -> Result<(), pn_monitor::MonitorError> {
/// let mut mon = VoltageMonitor::paper_board()?;
/// mon.set_thresholds(Volts::new(5.4), Volts::new(5.2))?;
/// assert!(mon.effective_threshold(ThresholdKind::High)
///     > mon.effective_threshold(ThresholdKind::Low));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageMonitor {
    high: ThresholdChannel,
    low: ThresholdChannel,
    interrupt_latency: Seconds,
    power: Watts,
}

impl VoltageMonitor {
    /// Builds the board from two channels.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] for negative latency
    /// or power figures.
    pub fn new(
        high: ThresholdChannel,
        low: ThresholdChannel,
        interrupt_latency: Seconds,
        power: Watts,
    ) -> Result<Self, MonitorError> {
        if interrupt_latency.value() < 0.0 || power.value() < 0.0 {
            return Err(MonitorError::InvalidParameter(
                "latency and power must be non-negative",
            ));
        }
        Ok(Self { high, low, interrupt_latency, power })
    }

    /// The paper's board: two Fig. 9 channels, a 50 µs SoC
    /// interrupt-entry latency and the measured 1.61 mW draw.
    ///
    /// # Errors
    ///
    /// Never fails for the preset constants.
    pub fn paper_board() -> Result<Self, MonitorError> {
        Self::new(
            ThresholdChannel::paper_channel()?,
            ThresholdChannel::paper_channel()?,
            Seconds::new(50e-6),
            Watts::from_milliwatts(1.61),
        )
    }

    /// Programs both thresholds (quantised); returns the achieved pair
    /// `(high, low)`.
    ///
    /// # Errors
    ///
    /// * [`MonitorError::ThresholdsInverted`] when `high <= low`,
    /// * [`MonitorError::ThresholdOutOfRange`] is avoided by clamping —
    ///   the channels clamp out-of-range requests to their achievable
    ///   grid, which is what the real firmware must do when `VC` drifts
    ///   toward the rails.
    pub fn set_thresholds(
        &mut self,
        high: Volts,
        low: Volts,
    ) -> Result<(Volts, Volts), MonitorError> {
        if high <= low {
            return Err(MonitorError::ThresholdsInverted {
                high: high.value(),
                low: low.value(),
            });
        }
        let achieved_high = self.high.set_threshold_clamped(high);
        let achieved_low = self.low.set_threshold_clamped(low);
        Ok((achieved_high, achieved_low))
    }

    /// The threshold a channel currently realises.
    pub fn effective_threshold(&self, kind: ThresholdKind) -> Volts {
        match kind {
            ThresholdKind::High => self.high.effective_threshold(),
            ThresholdKind::Low => self.low.effective_threshold(),
        }
    }

    /// Both effective thresholds as `(high, low)`.
    pub fn effective_thresholds(&self) -> (Volts, Volts) {
        (self.high.effective_threshold(), self.low.effective_threshold())
    }

    /// Access to a channel.
    pub fn channel(&self, kind: ThresholdKind) -> &ThresholdChannel {
        match kind {
            ThresholdKind::High => &self.high,
            ThresholdKind::Low => &self.low,
        }
    }

    /// Total delay from a physical crossing to the governor's handler
    /// running: comparator propagation plus SoC interrupt entry.
    pub fn total_interrupt_latency(&self, kind: ThresholdKind) -> Seconds {
        self.channel(kind).comparator().propagation_delay() + self.interrupt_latency
    }

    /// Latency to reprogram both thresholds over SPI.
    pub fn reprogram_latency(&self) -> Seconds {
        self.high.reprogram_latency() + self.low.reprogram_latency()
    }

    /// Continuous power drawn by the monitoring board (1.61 mW in the
    /// paper).
    pub fn power(&self) -> Watts {
        self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_board_power_matches_section_v_d() {
        let mon = VoltageMonitor::paper_board().unwrap();
        assert!((mon.power().to_milliwatts() - 1.61).abs() < 1e-9);
        // The paper notes this is below 0.82 % of the minimum system
        // power (≈1.8 W at the lowest OPP).
        assert!(mon.power().value() / 1.8 < 0.0082);
    }

    #[test]
    fn thresholds_keep_ordering() {
        let mut mon = VoltageMonitor::paper_board().unwrap();
        let (h, l) = mon.set_thresholds(Volts::new(5.45), Volts::new(5.15)).unwrap();
        assert!(h > l);
        assert!(matches!(
            mon.set_thresholds(Volts::new(5.0), Volts::new(5.2)),
            Err(MonitorError::ThresholdsInverted { .. })
        ));
    }

    #[test]
    fn out_of_range_requests_clamp_to_grid() {
        let mut mon = VoltageMonitor::paper_board().unwrap();
        let (h, l) = mon.set_thresholds(Volts::new(9.0), Volts::new(1.0)).unwrap();
        assert!(h.value() < 6.2);
        assert!(l.value() > 3.9);
        assert!(h > l);
    }

    #[test]
    fn interrupt_latency_is_sub_millisecond() {
        let mon = VoltageMonitor::paper_board().unwrap();
        for kind in [ThresholdKind::High, ThresholdKind::Low] {
            let lat = mon.total_interrupt_latency(kind).value();
            assert!(lat > 0.0 && lat < 1e-3, "latency {lat}");
        }
    }

    #[test]
    fn reprogramming_is_fast() {
        let mon = VoltageMonitor::paper_board().unwrap();
        assert!(mon.reprogram_latency().value() < 1e-3);
    }
}
