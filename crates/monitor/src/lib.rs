//! Voltage monitoring hardware model (paper Fig. 9).
//!
//! The paper keeps software overhead negligible by generating the
//! `Vhigh`/`Vlow` threshold interrupts in *hardware*: per threshold, a
//! resistive divider coarsely scales the supply voltage, an SPI-driven
//! MCP4131 digital potentiometer trims it finely (this is how the
//! processor *moves* the threshold), and an LT6703 comparator against
//! its internal 400 mV reference drives an interrupt line through a
//! level-shifting MOSFET. Two copies of the circuit provide the two
//! dynamic thresholds. The measured power cost of the whole monitor is
//! 1.61 mW (§V-D).
//!
//! This crate models each stage:
//!
//! * [`divider`] — resistive dividers with loading-free ideal ratios,
//! * [`potentiometer`] — the 129-tap MCP4131 with SPI transaction
//!   timing,
//! * [`comparator`] — the LT6703 with hysteresis and propagation delay,
//! * [`threshold`] — one complete channel: requested threshold →
//!   quantised achievable threshold,
//! * [`monitor`] — the dual-channel [`monitor::VoltageMonitor`] with
//!   interrupt-latency accounting.
//!
//! # Examples
//!
//! ```
//! use pn_monitor::monitor::VoltageMonitor;
//! use pn_units::Volts;
//!
//! # fn main() -> Result<(), pn_monitor::MonitorError> {
//! let mut mon = VoltageMonitor::paper_board()?;
//! mon.set_thresholds(Volts::new(5.37), Volts::new(5.23))?;
//! // The hardware can only realise quantised thresholds:
//! let (high, low) = mon.effective_thresholds();
//! assert!((high.value() - 5.37).abs() < 0.02);
//! assert!((low.value() - 5.23).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

pub mod comparator;
pub mod divider;
pub mod monitor;
pub mod potentiometer;
pub mod threshold;

mod error;

pub use error::MonitorError;
