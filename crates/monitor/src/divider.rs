//! Resistive divider stage.

use crate::MonitorError;
use pn_units::{Ohms, Volts};

/// An ideal two-resistor divider tapping `r_low / (r_high + r_low)` of
/// its input.
///
/// # Examples
///
/// ```
/// use pn_monitor::divider::Divider;
/// use pn_units::{Ohms, Volts};
///
/// # fn main() -> Result<(), pn_monitor::MonitorError> {
/// // The paper's 470 kΩ / 100 kΩ front divider.
/// let div = Divider::new(Ohms::new(470e3), Ohms::new(100e3))?;
/// let out = div.output(Volts::new(5.7));
/// assert!((out.value() - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divider {
    r_high: Ohms,
    r_low: Ohms,
}

impl Divider {
    /// Creates a divider from the top and bottom resistors.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorError::InvalidParameter`] for non-positive
    /// resistances.
    pub fn new(r_high: Ohms, r_low: Ohms) -> Result<Self, MonitorError> {
        if !(r_high.value() > 0.0) || !(r_low.value() > 0.0) {
            return Err(MonitorError::InvalidParameter("divider resistors must be positive"));
        }
        Ok(Self { r_high, r_low })
    }

    /// The paper's front divider: 470 kΩ over 100 kΩ.
    pub fn paper_front_divider() -> Self {
        Self::new(Ohms::new(470e3), Ohms::new(100e3)).expect("preset resistors are valid")
    }

    /// The division ratio `r_low / (r_high + r_low)`.
    pub fn ratio(&self) -> f64 {
        self.r_low.value() / (self.r_high.value() + self.r_low.value())
    }

    /// Output voltage for a given input.
    pub fn output(&self, input: Volts) -> Volts {
        input * self.ratio()
    }

    /// Quiescent current drawn from the monitored rail.
    pub fn quiescent_current(&self, input: Volts) -> pn_units::Amps {
        input / (self.r_high + self.r_low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_ratio() {
        let d = Divider::paper_front_divider();
        assert!((d.ratio() - 100.0 / 570.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_nonpositive_resistors() {
        assert!(Divider::new(Ohms::new(0.0), Ohms::new(1.0)).is_err());
        assert!(Divider::new(Ohms::new(1.0), Ohms::new(-1.0)).is_err());
    }

    #[test]
    fn quiescent_current_is_microamps() {
        let d = Divider::paper_front_divider();
        let i = d.quiescent_current(Volts::new(5.7));
        assert!(i.value() < 15e-6, "divider burns too much: {i}");
    }

    proptest! {
        #[test]
        fn output_proportional_to_input(v in 0.0f64..10.0, k in 0.5f64..3.0) {
            let d = Divider::paper_front_divider();
            let a = d.output(Volts::new(v)).value();
            let b = d.output(Volts::new(v * k)).value();
            prop_assert!((b - a * k).abs() < 1e-9);
        }

        #[test]
        fn ratio_is_in_unit_interval(rh in 1.0f64..1e7, rl in 1.0f64..1e7) {
            let d = Divider::new(Ohms::new(rh), Ohms::new(rl)).unwrap();
            prop_assert!(d.ratio() > 0.0 && d.ratio() < 1.0);
        }
    }
}
