//! Newtype physical quantities with dimensional arithmetic.
//!
//! Every electrical and temporal quantity used by the `power-neutral`
//! workspace is a newtype over `f64` ([C-NEWTYPE]). The wrappers are
//! deliberately thin — they exist so that a capacitance can never be
//! passed where a voltage is expected — while cross-type operator
//! overloads encode the handful of physical laws the simulator relies on
//! (`V·A = W`, `W·s = J`, `A·s = C`, `Q/V = F`, `V/Ω = A`, …).
//!
//! # Examples
//!
//! ```
//! use pn_units::{Volts, Amps, Watts, Seconds};
//!
//! let v = Volts::new(5.3);
//! let i = Amps::new(0.5);
//! let p: Watts = v * i;
//! assert!((p.value() - 2.65).abs() < 1e-12);
//!
//! let e = p * Seconds::new(2.0);
//! assert!((e.value() - 5.3).abs() < 1e-12);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

mod quantity;

pub use quantity::{
    Amps, Celsius, Coulombs, Farads, Gigahertz, Hertz, Joules, Ohms, Seconds, Volts, Watts,
    WattsPerSquareMeter,
};

/// Boltzmann constant divided by elementary charge, in volts per kelvin.
///
/// Used to compute the diode thermal voltage `V_T = k·T/q`.
pub const BOLTZMANN_OVER_CHARGE: f64 = 8.617_333_262e-5;

/// Diode thermal voltage at the given cell temperature.
///
/// # Examples
///
/// ```
/// use pn_units::{thermal_voltage, Celsius};
/// let vt = thermal_voltage(Celsius::new(25.0));
/// assert!((vt.value() - 0.02569).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temperature: Celsius) -> Volts {
    Volts::new(BOLTZMANN_OVER_CHARGE * temperature.to_kelvin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = thermal_voltage(Celsius::new(25.0));
        assert!((vt.value() - 0.025693).abs() < 1e-5, "got {vt}");
    }

    #[test]
    fn thermal_voltage_scales_with_temperature() {
        assert!(thermal_voltage(Celsius::new(60.0)) > thermal_voltage(Celsius::new(20.0)));
    }
}
