//! Unit newtype definitions and their dimensional arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines a quantity newtype over `f64` with the standard arithmetic
/// within the same dimension (add, subtract, negate, scale by `f64`,
/// dimensionless ratio) plus the common trait set.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw `f64` value expressed in the base unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// The smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the wrapped value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Dimensionless ratio of two like quantities.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Solar irradiance in watts per square metre.
    WattsPerSquareMeter,
    "W/m²"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);

// ---------------------------------------------------------------------------
// Cross-dimension physical laws.
// ---------------------------------------------------------------------------

/// `P = V · I`
impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

/// `P = I · V`
impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

/// `I = P / V`
impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

/// `V = P / I`
impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.value() / rhs.value())
    }
}

/// `E = P · t`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

/// `E = t · P`
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

/// `P = E / t`
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.value() / rhs.value())
    }
}

/// `Q = I · t`
impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs::new(self.value() * rhs.value())
    }
}

/// `Q = t · I`
impl Mul<Amps> for Seconds {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Amps) -> Coulombs {
        rhs * self
    }
}

/// `I = Q / t`
impl Div<Seconds> for Coulombs {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Seconds) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

/// `C = Q / V`
impl Div<Volts> for Coulombs {
    type Output = Farads;
    #[inline]
    fn div(self, rhs: Volts) -> Farads {
        Farads::new(self.value() / rhs.value())
    }
}

/// `Q = C · V`
impl Mul<Volts> for Farads {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs::new(self.value() * rhs.value())
    }
}

/// `V = Q / C`
impl Div<Farads> for Coulombs {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Farads) -> Volts {
        Volts::new(self.value() / rhs.value())
    }
}

/// `I = V / R`
impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

/// `V = I · R`
impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.value() * rhs.value())
    }
}

/// `R = V / I`
impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.value() / rhs.value())
    }
}

// ---------------------------------------------------------------------------
// Convenience constructors and conversions.
// ---------------------------------------------------------------------------

impl Volts {
    /// Constructs a voltage given in millivolts.
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Volts;
    /// assert_eq!(Volts::from_millivolts(144.0), Volts::new(0.144));
    /// ```
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv / 1e3)
    }

    /// This voltage expressed in millivolts.
    pub fn to_millivolts(self) -> f64 {
        self.value() * 1e3
    }
}

impl Farads {
    /// Constructs a capacitance given in millifarads.
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Farads;
    /// assert_eq!(Farads::from_millifarads(47.0), Farads::new(0.047));
    /// ```
    pub fn from_millifarads(mf: f64) -> Self {
        Self::new(mf / 1e3)
    }

    /// This capacitance expressed in millifarads.
    pub fn to_millifarads(self) -> f64 {
        self.value() * 1e3
    }
}

impl Watts {
    /// Constructs a power given in milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw / 1e3)
    }

    /// This power expressed in milliwatts.
    pub fn to_milliwatts(self) -> f64 {
        self.value() * 1e3
    }
}

impl Seconds {
    /// Constructs a duration given in milliseconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Seconds;
    /// assert_eq!(Seconds::from_millis(63.21), Seconds::new(0.06321));
    /// ```
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }

    /// Constructs a duration given in minutes.
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Constructs a duration given in hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// This duration expressed in milliseconds.
    pub fn to_millis(self) -> f64 {
        self.value() * 1e3
    }

    /// This duration expressed in hours.
    pub fn to_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Formats the duration as `HH:MM:SS` (wall-clock style).
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Seconds;
    /// assert_eq!(Seconds::from_hours(10.5).to_hhmmss(), "10:30:00");
    /// ```
    pub fn to_hhmmss(self) -> String {
        let total = self.value().max(0.0).round() as u64;
        format!("{:02}:{:02}:{:02}", total / 3600, (total % 3600) / 60, total % 60)
    }

    /// Formats the duration as `MM:SS` (as used by the paper's Table II).
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Seconds;
    /// assert_eq!(Seconds::new(5.0).to_mmss(), "00:05");
    /// assert_eq!(Seconds::from_minutes(60.0).to_mmss(), "60:00");
    /// ```
    pub fn to_mmss(self) -> String {
        let total = self.value().max(0.0).round() as u64;
        format!("{:02}:{:02}", total / 60, total % 60)
    }
}

impl Hertz {
    /// Constructs a frequency given in megahertz.
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Constructs a frequency given in gigahertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Hertz;
    /// assert_eq!(Hertz::from_gigahertz(1.4), Hertz::new(1.4e9));
    /// ```
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// This frequency expressed in megahertz.
    pub fn to_megahertz(self) -> f64 {
        self.value() / 1e6
    }

    /// This frequency expressed in gigahertz.
    pub fn to_gigahertz(self) -> f64 {
        self.value() / 1e9
    }
}

/// Alias-style helper: gigahertz are common enough in the platform model
/// to deserve a dedicated constructor type.
pub type Gigahertz = Hertz;

impl Celsius {
    /// This temperature in kelvin.
    ///
    /// # Examples
    ///
    /// ```
    /// use pn_units::Celsius;
    /// assert!((Celsius::new(25.0).to_kelvin() - 298.15).abs() < 1e-9);
    /// ```
    pub fn to_kelvin(self) -> f64 {
        self.value() + 273.15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts::new(5.0);
        let r = Ohms::new(100.0);
        let i = v / r;
        assert!((i.value() - 0.05).abs() < 1e-12);
        assert!(((i * r) - v).abs() < Volts::new(1e-12));
    }

    #[test]
    fn power_energy_charge_chain() {
        let p = Volts::new(5.3) * Amps::new(1.0);
        let e = p * Seconds::new(10.0);
        assert!((e.value() - 53.0).abs() < 1e-9);
        let q = Amps::new(0.5) * Seconds::new(4.0);
        let c = q / Volts::new(2.0);
        assert!((c.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Volts::new(5.3456)), "5.35 V");
        assert_eq!(format!("{:.1}", Watts::new(1.24)), "1.2 W");
    }

    #[test]
    fn hhmmss_formats() {
        assert_eq!(Seconds::new(0.0).to_hhmmss(), "00:00:00");
        assert_eq!(Seconds::new(3661.0).to_hhmmss(), "01:01:01");
    }

    #[test]
    fn clamp_bounds() {
        let v = Volts::new(6.2).clamp(Volts::new(4.1), Volts::new(5.7));
        assert_eq!(v, Volts::new(5.7));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Volts::new(5.0).clamp(Volts::new(5.7), Volts::new(4.1));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert_eq!(total, Watts::new(3.5));
    }

    proptest! {
        #[test]
        fn add_sub_inverse(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let x = Volts::new(a);
            let y = Volts::new(b);
            let back = (x + y) - y;
            prop_assert!((back.value() - a).abs() <= 1e-6 * (1.0 + a.abs()));
        }

        #[test]
        fn ratio_is_dimensionless_scale(a in 0.1f64..1e3, k in 0.1f64..100.0) {
            let x = Watts::new(a);
            let y = x * k;
            prop_assert!(((y / x) - k).abs() < 1e-9);
        }

        #[test]
        fn ohms_law_consistency(v in 0.01f64..100.0, r in 0.01f64..1e5) {
            let i = Volts::new(v) / Ohms::new(r);
            let p1 = Volts::new(v) * i;
            let p2 = Amps::new(i.value()) * Volts::new(v);
            prop_assert!((p1.value() - p2.value()).abs() < 1e-9 * (1.0 + p1.value().abs()));
        }

        #[test]
        fn charge_capacitance_round_trip(q in 1e-6f64..10.0, v in 0.5f64..10.0) {
            let c = Coulombs::new(q) / Volts::new(v);
            let q2 = c * Volts::new(v);
            prop_assert!((q2.value() - q).abs() < 1e-9 * (1.0 + q));
        }
    }
}
