//! Renders the actual smallpt workload the paper benchmarks with, and
//! relates wall-clock throughput to the platform performance model.
//!
//! ```sh
//! cargo run --release --example raytrace -- [width] [height] [spp] [out.ppm]
//! ```

use power_neutral::soc::cores::CoreConfig;
use power_neutral::soc::perf::PerfModel;
use power_neutral::units::Hertz;
use power_neutral::workload::render::{render, RenderSettings};
use power_neutral::workload::scene::Scene;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let width: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(160);
    let height: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120);
    let spp: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let out = args.get(4).cloned().unwrap_or_else(|| "smallpt.ppm".to_string());

    println!("rendering {width}x{height} at {spp} spp (the paper's benchmark quality)…");
    let start = std::time::Instant::now();
    let image = render(
        &Scene::cornell_box(),
        RenderSettings { width, height, samples_per_pixel: spp, seed: 0 },
    );
    let elapsed = start.elapsed().as_secs_f64();

    std::fs::write(&out, image.to_ppm())?;
    println!("  wrote {out}");
    println!("  rays traced:     {}", image.rays_traced);
    println!("  mean luminance:  {:.3}", image.mean_luminance());
    println!("  render time:     {elapsed:.2} s  ({:.3} frames/s here)", 1.0 / elapsed);

    // For scale: what the modelled ODROID XU4 would sustain.
    let perf = PerfModel::odroid_xu4();
    let all_cores = CoreConfig::new(4, 4)?;
    println!(
        "  modelled XU4:    {:.3} benchmark frames/s at 8 cores × 1.4 GHz (Fig. 7: ≈0.25)",
        perf.frames_per_second(all_cores, Hertz::from_gigahertz(1.4))
    );
    Ok(())
}
