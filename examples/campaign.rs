//! Batch campaign quickstart: sweep the governor across every weather
//! condition in parallel, compare survival and work done, then show
//! the persistence layer — sharded runs merged bitwise, shard-aware
//! resume of an interrupted run, the CSV exports, and the adaptive
//! driver bisecting each group's brown-out capacitance boundary.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use power_neutral::harvest::cache::TraceCache;
use power_neutral::harvest::weather::Weather;
use power_neutral::sim::adaptive::{AdaptiveCampaign, AdaptiveConfig};
use power_neutral::sim::campaign::{
    resume_campaign, run_campaign, CampaignReport, CampaignSpec, GovernorSpec,
};
use power_neutral::sim::executor::Executor;
use power_neutral::sim::persist;
use power_neutral::sim::supply::SupplyModel;
use power_neutral::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CampaignSpec::new()?
        .with_weathers(Weather::all().to_vec())
        .with_governors(vec![GovernorSpec::PowerNeutral, GovernorSpec::Powersave])
        .with_duration(Seconds::new(30.0));

    let executor = Executor::default();
    println!(
        "running {} scenario cells on {} threads…",
        spec.cell_count(),
        executor.threads()
    );
    let report = run_campaign(&spec, &executor)?;

    println!("\n  {:<32} {:<6} {:>9} {:>10}", "cell", "alive", "VC ±5%", "instr (G)");
    println!("  {}", "-".repeat(60));
    for c in report.cells() {
        println!(
            "  {:<32} {:<6} {:>9.3} {:>10.2}",
            c.cell.label(),
            if c.survived { "yes" } else { "NO" },
            c.vc_stability,
            c.instructions_billions
        );
    }
    println!(
        "\n  survival rate {:.0} % ({} brownouts in {} cells)",
        report.survival_rate() * 100.0,
        report.brownout_count(),
        report.len()
    );
    for g in report.by_governor() {
        println!(
            "  {:<14} mean VC stability {:.3}, total {:.2} G instructions",
            g.label,
            g.vc_stability.mean().unwrap_or(0.0),
            g.instructions_billions.sum()
        );
    }

    // The supply fast path: the same matrix on the interpolated
    // model (a pretabulated PV surface instead of a Newton solve per
    // derivative evaluation). Verdicts must agree with the exact run;
    // the CSV names the model per row so mixed exports stay
    // self-describing.
    let fast_spec = spec.clone().with_supply_model(SupplyModel::interpolated());
    let fast = run_campaign(&fast_spec, &executor)?;
    assert!(
        report
            .cells()
            .iter()
            .zip(fast.cells())
            .all(|(exact, interp)| exact.survived == interp.survived),
        "interpolation must not flip smoke-matrix verdicts"
    );
    println!(
        "\n  interpolated fast path agrees on all {} verdicts (rows tagged {})",
        fast.len(),
        fast.cells()[0].cell.supply_model().slug()
    );

    // The persistence layer: the same matrix run as three shards (as
    // three machines would), each partial report serialized and
    // decoded, merges back to the exact report computed above.
    let parts: Result<Vec<CampaignReport>, _> = spec
        .shard(3)
        .iter()
        .map(|shard| {
            let partial = shard.run(&executor)?;
            persist::report_from_str(&persist::report_to_string(&partial))
        })
        .collect();
    let merged = CampaignReport::merge(parts?)?;
    assert_eq!(merged, report, "shard + persist + merge must be bitwise-lossless");
    let csv = persist::report_csv_string(&merged)?;
    println!(
        "\n  3 shards persisted and merged bitwise; CSV export: {} rows, first:\n  {}",
        merged.len(),
        csv.lines().nth(1).unwrap_or("<empty>")
    );

    // Shard-aware resume: pretend the run died after the first shard.
    // Resuming from its saved partial report simulates only the
    // missing cells and recomposes the full report bitwise.
    let saved = persist::report_from_str(&persist::report_to_string(
        &spec.shard(3)[0].run(&executor)?,
    ))?;
    let resumed = resume_campaign(&spec, &saved, &executor, None)?;
    assert_eq!(resumed, report, "resume must reproduce the uninterrupted run bitwise");
    println!(
        "  resumed the remaining {} cells from a {}-cell saved report — bitwise identical",
        report.len() - saved.len(),
        saved.len()
    );

    // Adaptive refinement: bisect each (weather, governor) group's
    // buffer capacitance to its brown-out boundary, steering every
    // round from the previous report.
    let config = AdaptiveConfig { tolerance_mf: 64.0, max_rounds: 24, ..Default::default() };
    let mut adaptive = AdaptiveCampaign::from_report(&report, config)?;
    let cache = TraceCache::new();
    let brackets = adaptive.run(&executor, Some(&cache))?;
    println!(
        "\n  adaptive boundary search: {} rounds, {} probe cells",
        adaptive.rounds(),
        adaptive.history().len() - report.len()
    );
    for b in &brackets {
        let bracket = match (b.lo_mf, b.hi_mf) {
            (Some(lo), Some(hi)) => format!("({lo:.1}, {hi:.1}] mF"),
            (Some(lo), None) => format!("> {lo:.1} mF"),
            (None, Some(hi)) => format!("≤ {hi:.1} mF"),
            (None, None) => "unknown".into(),
        };
        println!(
            "  {:<26} boundary {:<22} [{}]",
            format!("{}/{}", b.weather, b.governor.label()),
            bracket,
            b.status
        );
    }
    // The probe history is an ordinary report: summary CSV export
    // covers the whole boundary search.
    let summary = persist::report_summary_csv_string(&adaptive.probe_report())?;
    println!("\n  summary CSV: {} group rows", summary.lines().count() - 1);
    Ok(())
}
