//! Batch campaign quickstart: sweep the governor across every weather
//! condition in parallel, compare survival and work done, then show
//! the persistence layer — sharded runs merged bitwise and the CSV
//! export.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use power_neutral::harvest::weather::Weather;
use power_neutral::sim::campaign::{run_campaign, CampaignReport, CampaignSpec, GovernorSpec};
use power_neutral::sim::executor::Executor;
use power_neutral::sim::persist;
use power_neutral::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CampaignSpec::new()?
        .with_weathers(Weather::all().to_vec())
        .with_governors(vec![GovernorSpec::PowerNeutral, GovernorSpec::Powersave])
        .with_duration(Seconds::new(30.0));

    let executor = Executor::default();
    println!(
        "running {} scenario cells on {} threads…",
        spec.cell_count(),
        executor.threads()
    );
    let report = run_campaign(&spec, &executor)?;

    println!("\n  {:<32} {:<6} {:>9} {:>10}", "cell", "alive", "VC ±5%", "instr (G)");
    println!("  {}", "-".repeat(60));
    for c in report.cells() {
        println!(
            "  {:<32} {:<6} {:>9.3} {:>10.2}",
            c.cell.label(),
            if c.survived { "yes" } else { "NO" },
            c.vc_stability,
            c.instructions_billions
        );
    }
    println!(
        "\n  survival rate {:.0} % ({} brownouts in {} cells)",
        report.survival_rate() * 100.0,
        report.brownout_count(),
        report.len()
    );
    for g in report.by_governor() {
        println!(
            "  {:<14} mean VC stability {:.3}, total {:.2} G instructions",
            g.label,
            g.vc_stability.mean().unwrap_or(0.0),
            g.instructions_billions.sum()
        );
    }

    // The persistence layer: the same matrix run as three shards (as
    // three machines would), each partial report serialized and
    // decoded, merges back to the exact report computed above.
    let parts: Result<Vec<CampaignReport>, _> = spec
        .shard(3)
        .iter()
        .map(|shard| {
            let partial = shard.run(&executor)?;
            persist::report_from_str(&persist::report_to_string(&partial))
        })
        .collect();
    let merged = CampaignReport::merge(parts?)?;
    assert_eq!(merged, report, "shard + persist + merge must be bitwise-lossless");
    let csv = persist::report_csv_string(&merged)?;
    println!(
        "\n  3 shards persisted and merged bitwise; CSV export: {} rows, first:\n  {}",
        merged.len(),
        csv.lines().nth(1).unwrap_or("<empty>")
    );
    Ok(())
}
