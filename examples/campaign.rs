//! Batch campaign quickstart: sweep the governor across every weather
//! condition in parallel and compare survival and work done.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use power_neutral::harvest::weather::Weather;
use power_neutral::sim::campaign::{run_campaign, CampaignSpec, GovernorSpec};
use power_neutral::sim::executor::Executor;
use power_neutral::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CampaignSpec::new()?
        .with_weathers(Weather::all().to_vec())
        .with_governors(vec![GovernorSpec::PowerNeutral, GovernorSpec::Powersave])
        .with_duration(Seconds::new(30.0));

    let executor = Executor::default();
    println!(
        "running {} scenario cells on {} threads…",
        spec.cell_count(),
        executor.threads()
    );
    let report = run_campaign(&spec, &executor)?;

    println!("\n  {:<32} {:<6} {:>9} {:>10}", "cell", "alive", "VC ±5%", "instr (G)");
    println!("  {}", "-".repeat(60));
    for c in report.cells() {
        println!(
            "  {:<32} {:<6} {:>9.3} {:>10.2}",
            c.cell.label(),
            if c.survived { "yes" } else { "NO" },
            c.vc_stability,
            c.instructions_billions
        );
    }
    println!(
        "\n  survival rate {:.0} % ({} brownouts in {} cells)",
        report.survival_rate() * 100.0,
        report.brownout_count(),
        report.len()
    );
    for g in report.by_governor() {
        println!(
            "  {:<14} mean VC stability {:.3}, total {:.2} G instructions",
            g.label,
            g.vc_stability.mean().unwrap_or(0.0),
            g.instructions_billions.sum()
        );
    }
    Ok(())
}
