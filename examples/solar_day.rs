//! A PV-powered day in any weather: runs the paper's 10:30–16:30 test
//! window and charts `VC`, consumed power and core count.
//!
//! ```sh
//! cargo run --release --example solar_day -- [full-sun|partial-sun|cloud|hail] [seed]
//! ```

use power_neutral::analysis::ascii::{chart, ChartOptions};
use power_neutral::analysis::metrics::fraction_within_band;
use power_neutral::harvest::weather::Weather;
use power_neutral::sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let weather = match args.get(1).map(String::as_str) {
        Some("partial-sun") => Weather::PartialSun,
        Some("cloud") => Weather::Cloudy,
        Some("hail") => Weather::Hail,
        _ => Weather::FullSun,
    };
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("simulating the 10:30–16:30 window under {weather} (seed {seed})…");
    let report = scenario::weather_day(weather, seed).run_power_neutral()?;

    println!(
        "{}",
        chart(
            &[report.recorder().vc()],
            &ChartOptions::new("VC over the day (V)").with_labels("V", "s since midnight")
        )
    );
    println!(
        "{}",
        chart(
            &[report.recorder().power_out(), report.recorder().power_in()],
            &ChartOptions::new("consumed (*) vs harvested (+) power (W)")
                .with_labels("W", "s since midnight")
        )
    );
    println!(
        "{}",
        chart(
            &[report.recorder().total_cores()],
            &ChartOptions::new("online cores").with_labels("cores", "s since midnight")
        )
    );

    let stability = fraction_within_band(report.recorder().vc(), 5.3, 0.05)?;
    println!("  survived:        {}", report.survived());
    println!("  ±5 % residency:  {:.1} % (paper, full sun: 93.3 %)", stability * 100.0);
    println!("  instructions:    {:.1} B", report.work().instructions_billions());
    println!("  transitions:     {}", report.transitions());
    Ok(())
}
