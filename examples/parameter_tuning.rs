//! The §III parameter study, live: sweep Vwidth/Vq/α/β over the
//! shadowing scenario and rank candidates by VC stability.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use power_neutral::sim::experiments::params;
use power_neutral::sim::sweep::SweepGrid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = SweepGrid::coarse();
    println!("sweeping {} parameter combinations (parallel)…", grid.candidates().len());
    let sweep = params::run(&grid)?;

    println!(
        "\n  {:<12} {:<9} {:<9} {:<9} {:<14} survived",
        "Vwidth (mV)", "Vq (mV)", "α (V/s)", "β (V/s)", "±5% residency"
    );
    println!("  {}", "-".repeat(66));
    for r in sweep.results.iter().take(10) {
        println!(
            "  {:<12.0} {:<9.1} {:<9.3} {:<9.3} {:<14.3} {}",
            r.params.v_width().to_millivolts(),
            r.params.v_q().to_millivolts(),
            r.params.alpha(),
            r.params.beta(),
            r.stability,
            r.survived
        );
    }
    let best = sweep.best();
    println!(
        "\n  best: Vwidth {:.0} mV, Vq {:.1} mV, α {:.3}, β {:.3}",
        best.params.v_width().to_millivolts(),
        best.params.v_q().to_millivolts(),
        best.params.alpha(),
        best.params.beta()
    );
    println!("  paper's §III optimum: Vwidth 144 mV, Vq 47.9 mV, α 0.120, β 0.479");
    Ok(())
}
