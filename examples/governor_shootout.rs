//! Table II live: every governor against the same PV hour.
//!
//! ```sh
//! cargo run --release --example governor_shootout -- [minutes] [seed]
//! ```

use power_neutral::sim::experiments::table2;
use power_neutral::units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let minutes: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("governor shoot-out over {minutes:.0} simulated minutes (seed {seed})…\n");
    let t = table2::run_with_duration(seed, Seconds::from_minutes(minutes))?;

    println!(
        "  {:<14} {:>16} {:>12} {:>18}",
        "scheme", "renders/min", "lifetime", "instructions (B)"
    );
    println!("  {}", "-".repeat(64));
    for row in &t.rows {
        println!(
            "  {:<14} {:>16.4} {:>12} {:>18.1}",
            row.scheme, row.renders_per_minute, row.lifetime, row.instructions_billions
        );
    }
    if let Some(ratio) = t.proposed_over_powersave() {
        println!(
            "\n  proposed vs powersave: ×{ratio:.2} instructions (paper: ×1.69 over one hour)"
        );
    }
    Ok(())
}
