//! Quickstart: assemble the paper's system (PV array → 47 mF buffer →
//! ODROID XU4 + power-neutral governor) and run one simulated minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use power_neutral::sim::scenario;
use power_neutral::units::{Seconds, WattsPerSquareMeter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ~560 W/m² ≈ the paper's test-day midday sun (≈3.3 W available
    // from the 1340 cm² array).
    let report = scenario::constant_sun(WattsPerSquareMeter::new(560.0), Seconds::new(60.0))
        .run_power_neutral()?;

    println!("power-neutral quickstart — one simulated minute of midday sun");
    println!("  governor:           {}", report.governor());
    println!("  survived:           {}", report.survived());
    println!("  final VC:           {:.3}", report.final_vc());
    println!("  OPP transitions:    {}", report.transitions());
    println!(
        "  instructions:       {:.1} billion",
        report.work().instructions_billions()
    );
    println!(
        "  renders completed:  {:.3} (at {:.3} renders/min)",
        report.work().renders(),
        report.work().renders_per_minute(report.duration().value())
    );
    println!(
        "  control overhead:   {:.3} % CPU",
        report.control_cpu_fraction() * 100.0
    );

    let vc = report.recorder().vc();
    println!(
        "  VC range:           {:.3} V … {:.3} V (target 5.3 V)",
        vc.min().unwrap_or(0.0),
        vc.max().unwrap_or(0.0)
    );
    Ok(())
}
