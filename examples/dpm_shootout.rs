//! The DPM axis live: race-to-idle and budget-shift against the
//! power-neutral controller, across a bright, a mixed and a dark hour.
//!
//! Race-to-idle survives the dark hour by parking in the deepest idle
//! state (watch `idle_t`/`idle_n`); budget-shift converts surplus sun
//! into the highest throughput of the three by shifting watts into the
//! big cluster.
//!
//! ```sh
//! cargo run --release --example dpm_shootout -- [buffer-mF] [seconds]
//! ```

use power_neutral::core::params::ControlParams;
use power_neutral::harvest::faults::FaultSpec;
use power_neutral::harvest::weather::Weather;
use power_neutral::sim::campaign::{CampaignCell, GovernorSpec};
use power_neutral::sim::engine::SimOverrides;
use power_neutral::soc::thermal::ThermalSpec;
use power_neutral::units::Seconds;
use power_neutral::workload::arrival::ArrivalSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let buffer_mf: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(150.0);
    let seconds: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60.0);

    println!("DPM shoot-out: {buffer_mf:.0} mF buffer, {seconds:.0} s per cell\n");
    println!(
        "  {:<14} {:<12} {:>6} {:>9} {:>9} {:>7} {:>10} {:>6}",
        "governor", "weather", "alive", "life (s)", "idle (s)", "parks", "instr (G)", "trans"
    );
    for gov in [GovernorSpec::PowerNeutral, GovernorSpec::RaceToIdle, GovernorSpec::BudgetShift] {
        for weather in [Weather::FullSun, Weather::PartialSun, Weather::Cloudy] {
            let cell = CampaignCell {
                weather,
                seed: 1,
                thermal: ThermalSpec::Off,
                arrival: ArrivalSpec::Saturated,
                fault: FaultSpec::None,
                buffer_mf,
                governor: gov,
                params: ControlParams::paper_optimal()?,
                duration: Seconds::new(seconds),
                options: SimOverrides::none(),
            };
            let out = cell.evaluate()?;
            println!(
                "  {:<14} {:<12} {:>6} {:>9.1} {:>9.3} {:>7} {:>10.3} {:>6}",
                cell.governor.label(),
                format!("{weather}"),
                if out.survived { "yes" } else { "NO" },
                out.lifetime_seconds,
                out.idle_time_seconds,
                out.idle_entries,
                out.instructions_billions,
                out.transitions
            );
        }
    }
    Ok(())
}
