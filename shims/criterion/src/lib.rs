//! Offline stand-in for the subset of the `criterion` crate used by the
//! `power-neutral` bench harnesses.
//!
//! The build environment has no crates.io access, so this shim supplies
//! just enough API for the seven harnesses in `crates/bench/benches` to
//! compile and run: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (+ `sample_size`/`finish`),
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple — a short warm-up followed by a
//! fixed number of timed samples, reporting min/mean per iteration. It
//! produces honest wall-clock numbers but none of criterion's
//! statistics, plotting, or regression analysis.

use std::time::Instant;

const DEFAULT_SAMPLES: usize = 20;

/// Collects one timing measurement per call to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    min_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, mean_ns: 0.0, min_ns: 0.0 }
    }

    /// Times the closure. Runs one warm-up batch, then `samples` timed
    /// batches, each sized so a batch takes at least ~1ms of wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow the batch until it costs >= 1ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_micros() >= 1000 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }

        let mut total_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
        }
        self.mean_ns = total_ns / self.samples as f64;
        self.min_ns = min_ns;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.to_string(), sample_size }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group (reported as `group/name`).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    println!(
        "{name:<50} mean {:>12}   min {:>12}",
        format_ns(b.mean_ns),
        format_ns(b.min_ns)
    );
}

/// `criterion_group!(name, target, ...)` — defines a function running
/// each target against a default-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — generates `fn main` invoking each
/// group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn format_ns_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
