//! Offline stand-in for the subset of the `serde` crate used by the
//! `power-neutral` workspace.
//!
//! `pn-analysis` and `pn-sim` use serde only for `#[derive(Serialize,
//! Deserialize)]` markers on their series and campaign types (actual
//! persistence goes through the hand-written CSV and
//! `pn_sim::persist` wire formats). The build environment has no
//! crates.io access, so this shim supplies marker traits and no-op
//! derive macros with the same names; swapping in real serde later is a
//! manifest-only change.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derive macros share the traits' names, exactly as in real serde.
pub use serde_derive::{Deserialize, Serialize};
