//! Offline stand-in for the subset of the `serde` crate used by the
//! `power-neutral` workspace.
//!
//! Only `pn-analysis` uses serde, and only for `#[derive(Serialize,
//! Deserialize)]` markers on its series types (actual persistence goes
//! through the hand-written CSV layer). The build environment has no
//! crates.io access, so this shim supplies marker traits and no-op
//! derive macros with the same names; swapping in real serde later is a
//! manifest-only change.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

// The derive macros share the traits' names, exactly as in real serde.
pub use serde_derive::{Deserialize, Serialize};
