//! Offline stand-in for the subset of the `proptest` crate used by the
//! `power-neutral` workspace tests.
//!
//! The build environment has no crates.io access, so this shim provides
//! the pieces the tests actually exercise:
//!
//! * the [`proptest!`] macro (multiple `#[test] fn name(pat in strategy)`
//!   items per block),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * range strategies over floats and integers (`0.0f64..1.0`,
//!   `1u8..=4`, ...),
//! * [`collection::vec`] and [`bool::ANY`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the assertion message and the case number. Generation is deterministic
//! per test name, so failures reproduce exactly across runs.

pub mod test_runner {
    /// Default number of random cases each `proptest!` test executes.
    pub const CASES: u32 = 128;

    /// The effective case count: [`CASES`] unless the `PROPTEST_CASES`
    /// environment variable overrides it (the same knob real proptest
    /// reads, so CI stress jobs can raise the count without a rebuild).
    /// Invalid or zero values fall back to the default.
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(CASES)
    }

    use rand::{Rng, SeedableRng};

    /// Deterministic per-test random source (the rand shim's seeded
    /// generator, exactly as real proptest builds on rand).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds the generator from the test's name (FNV-1a), so every
        /// run of a given test sees the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { inner: rand::rngs::StdRng::seed_from_u64(h) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            self.inner.gen()
        }

        /// Uniform in `[lo, hi)` (delegates to the rand shim, which owns
        /// the half-open rounding guard).
        pub fn gen_range(&mut self, range: core::ops::Range<f64>) -> f64 {
            self.inner.gen_range(range)
        }
    }

    /// A failed property case (carried out of the test body by
    /// `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError { msg }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.msg)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values for one `proptest!` argument.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            // Bias some draws onto the exact endpoints (real proptest
            // generates boundary values); interpolation alone could
            // never produce `hi`.
            match rng.next_u64() % 32 {
                0 => lo,
                1 => hi,
                _ => lo + (hi - lo) * rng.next_f64(),
            }
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi - lo) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo + off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo + off) as $t
                }
            }
        )+};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Always yields the same value (real proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with element strategy `S` and a length drawn
    /// from a half-open range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item expands to a normal test that runs
/// [`test_runner::cases`] sampled cases ([`test_runner::CASES`] by
/// default, the `PROPTEST_CASES` environment variable to override).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let mut __pn_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __pn_cases = $crate::test_runner::cases();
                for __pn_case in 0..__pn_cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __pn_rng);)+
                    let __pn_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let _: () = $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __pn_result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __pn_case + 1,
                            __pn_cases,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case with the stringified condition and case number (cases
/// are seeded per test name, so a failure reproduces deterministically).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (both: `{:?}`)",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 2.0f64..3.0, n in 1u8..=4, k in 0usize..10) {
            prop_assert!((2.0..3.0).contains(&x));
            prop_assert!((1..=4).contains(&n));
            prop_assert!(k < 10);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {}", x);
            }
        }

        #[test]
        fn bools_take_both_values(bits in crate::collection::vec(crate::bool::ANY, 64..65)) {
            prop_assert!(bits.iter().any(|b| *b));
            prop_assert!(bits.iter().any(|b| !*b));
        }

        #[test]
        fn eq_and_ne_assertions_work(a in 1i32..100) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
            prop_assert_eq!(a + a, 2 * a, "custom message {}", a);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("foo");
        let mut b = crate::test_runner::TestRng::for_test("foo");
        let mut c = crate::test_runner::TestRng::for_test("bar");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
