//! `Serialize`/`Deserialize` derive macros for the offline serde shim
//! (see `shims/serde`). The shim's traits are pure markers, so each
//! derive emits an empty impl for the deriving type — enough that
//! `T: Serialize` bounds are satisfied exactly as they would be with
//! real serde. Generic types are not supported (the workspace derives
//! only on concrete types).

use proc_macro::TokenStream;

/// Extracts the type name following the `struct`/`enum`/`union`
/// keyword, skipping attributes, doc comments and visibility.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        let s = tt.to_string();
        if saw_keyword {
            return s;
        }
        if s == "struct" || s == "enum" || s == "union" {
            saw_keyword = true;
        }
    }
    panic!("serde_derive shim: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input)).parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!("impl<'de> ::serde::Deserialize<'de> for {} {{}}", type_name(input)).parse().unwrap()
}
