//! Offline stand-in for the subset of the `rand` crate API used by the
//! `power-neutral` workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors this minimal, API-compatible shim instead. Only the
//! surface actually exercised by `pn-harvest` and `pn-workload` is
//! provided: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over `f64` ranges.
//!
//! The generator is SplitMix64 — deterministic per seed, statistically
//! solid for simulation noise, and trivially portable. It makes no
//! attempt to reproduce the exact stream of the real `rand::rngs::StdRng`
//! (ChaCha12); callers only rely on determinism and uniformity.

use core::ops::Range;

/// Types that can be drawn uniformly from a generator (`Standard`
/// distribution stand-in).
pub trait Standard: Sized {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let u: f64 = Standard::draw(rng);
        let x = range.start + (range.end - range.start) * u;
        // start + span*u can round up to exactly `end`; keep the range
        // half-open as real rand guarantees.
        if x < range.end {
            x
        } else {
            range.end.next_down().max(range.start)
        }
    }
}

impl SampleUniform for usize {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + rng.next_u64() % (range.end - range.start)
    }
}

/// Core generator trait (the subset of `rand::RngCore` + `rand::Rng` we
/// need, merged for simplicity).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0f64..5.5);
            assert!((3.0..5.5).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
